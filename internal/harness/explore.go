package harness

import (
	"context"
	"fmt"
	"math/bits"
	"strings"
	"text/tabwriter"

	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// This file is the systematic counterpart of interleave.go: where
// RunInterleaved samples one seeded schedule of a plan, ExplorePlan
// enumerates *every* schedule of the same stepper space and certifies
// each recorded history online, turning per-plan certification from
// sampled evidence into a proof over that space (for plans small enough
// to exhaust).
// The walk is a depth-first search over scheduling choices with three
// sound prunings:
//
//   - prefix-closure cuts (the paper's Corollary 2): each schedule feeds a
//     spec.Monitor through the recorder's tap, and the moment the monitor
//     latches a violation every extension of the prefix is known violating
//     — the whole subtree is cut after O(1) work at the causing event;
//   - sleep sets (a DPOR-style partial-order reduction): after a subtree
//     explores the schedules starting with step a, sibling subtrees need
//     not re-explore interleavings that merely reorder a with steps
//     independent of it. Independence is engine-aware and deliberately
//     conservative — only steps that cannot begin or complete a
//     transaction (which would change real-time order) and cannot abort
//     are ever claimed independent, so swapping them provably preserves
//     the recorded history's verdict (see independentSteps);
//   - symmetry reduction (the idea of internal/enum: transaction k enters
//     only after k-1): two threads that have not started and run identical
//     programs are interchangeable, so only the lower-indexed one may take
//     its first step first.
//
// Engines cannot be checkpointed, so the DFS is stateless in the model-
// checking sense: each leaf re-executes the plan from a fresh engine along
// the decision stack (replay), which the deterministic stepper makes
// byte-reproducible.
//
// The quantifier is the stepper's schedule space — the engine's exclusion
// policy plus the stepper's abort-backoff discipline (an aborted thread
// retries only after some other thread t-completes; see
// stepper.resolveAbort), exactly the space RunInterleaved samples. Real
// goroutine runs can additionally interleave an immediate retry's events
// before any t-completion; those schedules are outside the space and a
// ProvenDUOpaque verdict does not speak to them (ROADMAP: lift the
// backoff gate to enumerate free retry placements).

// ExploreOutcome is the per-plan verdict of an exploration.
type ExploreOutcome uint8

const (
	// ProvenDUOpaque: every schedule of the stepper's space — the
	// engine's exclusion policy plus the abort-backoff discipline, the
	// same space RunInterleaved samples — was enumerated (directly or via
	// a sound pruning) and every recorded history satisfies the
	// configured criterion: for the default criterion, the plan is proven
	// du-opaque on this engine over that space.
	ProvenDUOpaque ExploreOutcome = iota + 1
	// ViolationFound: some schedule's recorded history violates the
	// criterion; the first one found is pinned in ExploreReport.Violation
	// with its causing schedule and latching event.
	ViolationFound
	// BudgetExhausted: the schedule budget (or a node limit inside a
	// check) ran out before the space was exhausted and no violation was
	// found; the report's counters describe the explored frontier.
	BudgetExhausted
)

// String names the outcome.
func (o ExploreOutcome) String() string {
	switch o {
	case ProvenDUOpaque:
		return "proven"
	case ViolationFound:
		return "violation"
	case BudgetExhausted:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("ExploreOutcome(%d)", uint8(o))
	}
}

// ExploreConfig parameterizes an exploration.
type ExploreConfig struct {
	// Criterion is the monitored criterion: spec.DUOpacity (default) or
	// spec.Opacity. Both are prefix-closed, which is what makes the
	// mid-schedule subtree cut sound (Corollary 2 / Definition 5).
	Criterion spec.Criterion
	// MaxAttempts bounds retries per transaction, as Workload.MaxAttempts
	// does for the sampler (default 2: exploration multiplies schedules,
	// so retry tails are kept short; raise it to match a sampled workload
	// exactly).
	MaxAttempts int
	// MaxSchedules bounds the number of explored schedules — complete
	// replays plus subtrees cut mid-schedule (default 1 << 17). Exhausting
	// it yields BudgetExhausted unless a violation was already found.
	MaxSchedules int
	// MaxSteps bounds a single schedule's length (default: a generous
	// multiple of the plan size; exceeding it counts as budget
	// exhaustion).
	MaxSteps int
	// NodeLimit bounds each monitor check (default 2_000_000, as
	// certification). An undecided check makes the outcome
	// BudgetExhausted: the proof obligation was not discharged.
	NodeLimit int
	// StopAtFirstViolation ends the exploration at the first violating
	// schedule instead of surveying the rest of the space (refutation
	// needs one witness; proving still requires exhaustion).
	StopAtFirstViolation bool

	// DisableSleepSets, DisableSymmetry and DisablePrefixCut turn off the
	// individual prunings — the naive enumeration they leave behind is the
	// reference the pruning-soundness tests and EXPERIMENTS.md numbers
	// compare against. With all three set, the explorer enumerates the raw
	// stepper schedule space and runs every schedule to completion, so
	// OnSchedule sees every history of that space.
	DisableSleepSets bool
	DisableSymmetry  bool
	DisablePrefixCut bool

	// OnSchedule, when set, observes each schedule that runs to
	// completion: the thread choice at each step, the recorded history,
	// and its verdict. With the default prefix cut a violating schedule
	// is cut at its latching step — even when that step happens to be its
	// last — and is counted in PrefixCut, not delivered here; set
	// DisablePrefixCut to observe every schedule of the space. One
	// ExplorePlan call invokes the callback sequentially, but a config
	// shared across concurrent explorations (checkfarm.ExplorePlans with
	// jobs > 1) invokes it from all workers — such a callback must be
	// safe for concurrent use.
	// The field is excluded from serialization (checkfarm.JobSpec ships
	// ExploreConfig over the certd wire; a callback cannot travel).
	OnSchedule func(schedule []int, h *history.History, v spec.Verdict) `json:"-"`
}

func (cfg ExploreConfig) withDefaults(p stm.Plan) ExploreConfig {
	if cfg.Criterion == 0 {
		cfg.Criterion = spec.DUOpacity
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.MaxSchedules <= 0 {
		cfg.MaxSchedules = 1 << 17
	}
	if cfg.MaxSteps <= 0 {
		// Every retry replays at most one transaction's steps, and each
		// abort forces another thread's t-completion first, so schedules
		// are far shorter than this in practice.
		cfg.MaxSteps = (cfg.MaxAttempts+1)*p.Steps() + 64
	}
	if cfg.NodeLimit <= 0 {
		cfg.NodeLimit = 2_000_000
	}
	return cfg
}

// ExploreViolation pins one violating schedule.
type ExploreViolation struct {
	// Schedule is the thread stepped at each point, replayable through the
	// deterministic stepper.
	Schedule []int
	// History is the recorded history at the moment the monitor latched
	// (the violating prefix; prefix closure makes every extension
	// violating too).
	History *history.History
	// Verdict is the monitor's latched verdict, with the refutation
	// reason.
	Verdict spec.Verdict
	// At is the index of the event that latched the violation.
	At int
}

// ExploreReport is the result of exploring one plan on one engine.
type ExploreReport struct {
	Engine    string
	Criterion spec.Criterion
	Plan      stm.Plan
	Outcome   ExploreOutcome

	// Schedules counts schedules run to completion; PrefixCut counts
	// subtrees cut mid-schedule by the latched monitor (each cut stands
	// for every schedule extending the violating prefix).
	Schedules int
	PrefixCut int
	// Violations counts violating schedules/subtrees found; Violation
	// pins the first.
	Violations int
	Violation  *ExploreViolation
	// SleepPruned and SymmetryPruned count scheduling choices skipped by
	// the respective prunings (each skip cuts a whole subtree).
	SleepPruned    int
	SymmetryPruned int
	// Steps is the total number of t-operation steps executed across all
	// replays. Replays counts every walk down the tree regardless of how
	// it ended: completed schedules, prefix-cut and sleep-cut paths, and
	// step-budget truncations (it is not derivable from the other
	// counters — SleepPruned also counts sibling skips that replay
	// nothing).
	Steps   int64
	Replays int
	// MaxFrontier is the deepest decision stack reached — with
	// BudgetExhausted, how deep the explored frontier got.
	MaxFrontier int
	// Undecided counts completed schedules whose check hit the node
	// limit.
	Undecided int
	// DegradedReason is set when the exploration did not run to its
	// configured budget for an exceptional reason — the context was
	// cancelled, a monitor rejected a recorded event, or (under
	// checkfarm.ExplorePlans) the exploration shard panicked past its
	// retries. The Outcome is BudgetExhausted in that case: degraded
	// explorations are honest undecided results, never silent drops.
	DegradedReason string
}

// ExplorePlan enumerates every schedule of the deterministic stepper's
// space for the plan — the engine's exclusion policy plus the stepper's
// abort-backoff discipline, exactly the space RunInterleaved samples —
// certifies each recorded history online against cfg.Criterion, and
// aggregates a per-plan verdict: ProvenDUOpaque when the space was
// exhausted violation-free, ViolationFound with the pinned causing
// schedule, or BudgetExhausted with frontier statistics. See the file
// comment for what the quantifier does and does not cover.
func ExplorePlan(engine string, p stm.Plan, cfg ExploreConfig) (ExploreReport, error) {
	return ExplorePlanCtx(context.Background(), engine, p, cfg)
}

// ExplorePlanCtx is ExplorePlan with cancellation: the context is checked
// between replays and propagated into every monitor check
// (spec.WithContext), so a farm deadline stops even a pathological
// exploration promptly. Cancellation surfaces as Outcome BudgetExhausted
// with DegradedReason set — an honest undecided result.
func ExplorePlanCtx(ctx context.Context, engine string, p stm.Plan, cfg ExploreConfig) (ExploreReport, error) {
	if err := p.Validate(); err != nil {
		return ExploreReport{}, err
	}
	if len(p.Threads) > 64 {
		return ExploreReport{}, fmt.Errorf("harness: explore supports at most 64 threads, plan has %d", len(p.Threads))
	}
	if _, err := engines.New(engine, p.Objects); err != nil {
		return ExploreReport{}, err
	}
	cfg = cfg.withDefaults(p)
	switch cfg.Criterion {
	case spec.DUOpacity, spec.Opacity:
	default:
		return ExploreReport{}, fmt.Errorf("harness: explore requires a prefix-closed monitorable criterion (du-opacity or opacity), got %v", cfg.Criterion)
	}
	e := &explorer{
		engine:   engine,
		p:        p,
		policy:   policyFor(engine),
		cfg:      cfg,
		ctx:      ctx,
		symClass: symClasses(p.Threads),
		rep:      ExploreReport{Engine: engine, Criterion: cfg.Criterion, Plan: p},
	}
	e.run()
	return e.rep, nil
}

// exFrame is one decision point of the DFS: the scheduling choices that
// were admissible there, the one currently being explored, and the sleep
// machinery.
type exFrame struct {
	choices []int // admissible thread ids, post-symmetry-filter
	next    int   // index into choices of the branch being explored
	// base is the sleep set inherited when the frame was created; explored
	// accumulates the branches already fully explored here, which sleep
	// for the remaining siblings (the classic sleep-set discipline).
	base     uint64
	explored uint64
}

// pathEnd describes how one replay ended.
type pathEnd uint8

const (
	endComplete  pathEnd = iota // all threads done: a full schedule
	endPrefixCut                // monitor latched: subtree cut (Corollary 2)
	endSleepCut                 // only sleeping continuations: subtree cut
	endSteps                    // step bound exceeded (budget)
)

type explorer struct {
	engine   string
	p        stm.Plan
	policy   schedulePolicy
	cfg      ExploreConfig
	ctx      context.Context
	symClass []int // per-thread program class, see symClasses
	rep      ExploreReport

	stack []exFrame
	sched []int // thread stepped at each point of the current replay
	buf   []int // runnable scratch
	cbuf  []int // symmetry-filter scratch

	budget bool // a budget bound was hit (schedules or steps)
}

// noteDegraded records the first exceptional-degradation reason and marks
// the exploration budget-bound, so the outcome honestly reports that the
// space was not exhausted.
func (e *explorer) noteDegraded(reason string) {
	e.budget = true
	if e.rep.DegradedReason == "" {
		e.rep.DegradedReason = reason
	}
}

func (e *explorer) run() {
	for {
		if e.ctx != nil && e.ctx.Err() != nil {
			e.noteDegraded("context cancelled: " + e.ctx.Err().Error())
			break
		}
		end := e.replay()
		e.rep.Replays++
		if len(e.stack) > e.rep.MaxFrontier {
			e.rep.MaxFrontier = len(e.stack)
		}
		if end == endSteps {
			e.budget = true
		}
		if e.cfg.StopAtFirstViolation && e.rep.Violations > 0 {
			break
		}
		if e.rep.Replays >= e.cfg.MaxSchedules {
			// Only a budget problem if the space was not exhausted below.
			// The probe may skip sleeping siblings while advancing; those
			// subtrees are never walked, so keep them out of the report's
			// frontier statistics.
			saved := e.rep.SleepPruned
			if e.backtrack() {
				e.budget = true
			}
			e.rep.SleepPruned = saved
			break
		}
		if !e.backtrack() {
			break // space exhausted
		}
	}
	switch {
	case e.rep.Violations > 0:
		e.rep.Outcome = ViolationFound
	case e.budget || e.rep.Undecided > 0:
		e.rep.Outcome = BudgetExhausted
	default:
		e.rep.Outcome = ProvenDUOpaque
	}
}

// backtrack retires the deepest frame's current branch and advances to the
// next sibling that is neither explored nor sleeping, popping exhausted
// frames. It reports false when the whole space is exhausted.
func (e *explorer) backtrack() bool {
	for len(e.stack) > 0 {
		f := &e.stack[len(e.stack)-1]
		f.explored |= 1 << uint(f.choices[f.next])
		f.next++
		for f.next < len(f.choices) {
			t := f.choices[f.next]
			if !e.cfg.DisableSleepSets && f.base&(1<<uint(t)) != 0 {
				// A sleeping sibling: every schedule through it reorders
				// only steps independent of an already-explored subtree.
				e.rep.SleepPruned++
				f.explored |= 1 << uint(t)
				f.next++
				continue
			}
			return true
		}
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}

// replay re-executes the plan from a fresh engine along the decision
// stack, then extends the path depth-first (first unslept branch at every
// new decision point) until the schedule completes, the monitor latches,
// or a pruning cuts it.
func (e *explorer) replay() pathEnd {
	eng, err := engines.New(e.engine, e.p.Objects)
	if err != nil {
		panic("harness: explore engine vanished: " + err.Error()) // validated by ExplorePlan
	}
	rec := recorder.New(eng)
	mopts := []spec.Option{spec.WithNodeLimit(e.cfg.NodeLimit)}
	if e.ctx != nil {
		mopts = append(mopts, spec.WithContext(e.ctx))
	}
	m, err := spec.NewMonitor(e.cfg.Criterion, mopts...)
	if err != nil {
		panic("harness: explore monitor: " + err.Error()) // criterion validated by ExplorePlan
	}
	latched, latchAt, events := false, -1, 0
	tapFault := ""
	rec.Tap(func(ev history.Event) {
		if tapFault != "" {
			return
		}
		v, aerr := m.Append(ev)
		if aerr != nil {
			// The recorder only emits matched, well-ordered events, so a
			// rejection means the monitor and recorder disagree — degrade
			// this exploration honestly instead of crashing the farm.
			tapFault = "monitor rejected recorded event: " + aerr.Error()
			return
		}
		if !latched && !v.OK && !v.Undecided {
			latched, latchAt = true, events
		}
		events++
	})
	st := &stepper{
		rec:         rec,
		threads:     threadsFor(e.p),
		policy:      e.policy,
		maxAttempts: e.cfg.MaxAttempts,
	}
	e.sched = e.sched[:0]
	var sleep uint64 // the running sleep set along the path
	frameIdx := 0
	for {
		r := st.runnable(e.buf)
		e.buf = r[:0]
		if len(r) == 0 {
			e.finishSchedule(rec, m, latchAt)
			return endComplete
		}
		if len(e.sched) >= e.cfg.MaxSteps {
			// A latched violation survives the truncation: the criterion is
			// prefix-closed, so the violating prefix refutes the plan no
			// matter how the schedule would have continued (reachable only
			// with DisablePrefixCut — the cut returns at the latching step).
			if latched {
				e.recordViolation(rec, m, latchAt)
			}
			return endSteps
		}
		replaying := frameIdx < len(e.stack)
		choices := e.symmetryFilter(st, r, !replaying)
		var taken int
		switch {
		case replaying && len(choices) > 1:
			// A decision point already on the stack: follow it. The prefix
			// is identical to the replay that created the frame, so the
			// recomputed choices must match the stored ones.
			f := &e.stack[frameIdx]
			if len(f.choices) != len(choices) {
				panic("harness: explore replay diverged (nondeterministic engine?)")
			}
			taken = f.choices[f.next]
			sleep = e.childSleep(st, f.base|f.explored, taken)
			frameIdx++
		case len(choices) == 1:
			// Forced step: no decision, but the sleep set still evolves —
			// and a forced step into the sleep set means every completion
			// of this path was already covered from a sibling.
			taken = choices[0]
			if !e.cfg.DisableSleepSets && sleep&(1<<uint(taken)) != 0 {
				e.rep.SleepPruned++
				return endSleepCut
			}
			sleep = e.childSleep(st, sleep, taken)
		default:
			// A fresh decision point: open a frame, skipping branches that
			// start inside the inherited sleep set.
			f := exFrame{choices: append([]int(nil), choices...), base: sleep}
			for f.next < len(f.choices) && !e.cfg.DisableSleepSets && f.base&(1<<uint(f.choices[f.next])) != 0 {
				e.rep.SleepPruned++
				f.explored |= 1 << uint(f.choices[f.next])
				f.next++
			}
			if f.next == len(f.choices) {
				return endSleepCut
			}
			taken = f.choices[f.next]
			sleep = e.childSleep(st, f.base|f.explored, taken)
			e.stack = append(e.stack, f)
			frameIdx++
		}
		e.sched = append(e.sched, taken)
		st.step(st.threads[taken])
		e.rep.Steps++
		if tapFault == "" {
			if terr := rec.TapError(); terr != nil {
				// The recorder recovered a panicking monitor; the capture is
				// intact but unobserved from here on.
				tapFault = terr.Error()
			}
		}
		if tapFault != "" {
			e.noteDegraded(tapFault)
			return endSteps
		}
		if latched && !e.cfg.DisablePrefixCut {
			// Corollary 2: the prefix is not du-opaque (resp. opaque), so
			// no extension is — cut the whole subtree at the causing
			// event.
			e.recordViolation(rec, m, latchAt)
			e.rep.PrefixCut++
			return endPrefixCut
		}
	}
}

// finishSchedule accounts a completed schedule.
func (e *explorer) finishSchedule(rec *recorder.Recorder, m *spec.Monitor, latchAt int) {
	e.rep.Schedules++
	v := m.Verdict()
	switch {
	case v.Undecided:
		e.rep.Undecided++
		e.budget = true
	case !v.OK:
		// Reachable only with DisablePrefixCut (the naive reference
		// mode): with the cut enabled a latch — even on the schedule's
		// final step — returns endPrefixCut before finishSchedule runs.
		e.recordViolation(rec, m, latchAt)
	}
	if e.cfg.OnSchedule != nil {
		e.cfg.OnSchedule(append([]int(nil), e.sched...), rec.History(), v)
	}
}

func (e *explorer) recordViolation(rec *recorder.Recorder, m *spec.Monitor, latchAt int) {
	e.rep.Violations++
	if e.rep.Violation == nil {
		e.rep.Violation = &ExploreViolation{
			Schedule: append([]int(nil), e.sched...),
			History:  rec.History(),
			Verdict:  m.Verdict(),
			At:       latchAt,
		}
	}
}

// symmetryFilter drops choices that are symmetric images of lower-indexed
// ones: a thread that has not yet started and runs the same program as an
// earlier also-unstarted runnable thread may not move first — exchanging
// the two threads maps the dropped subtree onto the kept one, and every
// implemented criterion is invariant under renaming transactions (the
// symmetry-reduction idea of internal/enum). count guards the statistics
// against double-counting during replays.
func (e *explorer) symmetryFilter(st *stepper, r []int, count bool) []int {
	if e.cfg.DisableSymmetry {
		return r
	}
	out := e.cbuf[:0]
	for _, j := range r {
		drop := false
		if fresh(st.threads[j]) {
			for _, i := range r {
				if i >= j {
					break
				}
				if fresh(st.threads[i]) && e.symClass[i] == e.symClass[j] {
					drop = true
					break
				}
			}
		}
		if drop {
			if count {
				e.rep.SymmetryPruned++
			}
			continue
		}
		out = append(out, j)
	}
	e.cbuf = out[:0]
	return out
}

// fresh reports whether the thread has not performed any step yet.
func fresh(t *vthread) bool {
	return !t.done && t.tx == nil && t.txnIdx == 0 && t.attempts == 0
}

// symClasses assigns each thread the index of the lowest-indexed thread
// running an identical program — computed once per exploration, so the
// per-decision-point symmetry filter is integer comparisons instead of
// deep program comparisons at the first steps of every replay.
func symClasses(threads [][]stm.PlanTxn) []int {
	cls := make([]int, len(threads))
	for j := range threads {
		cls[j] = j
		for i := 0; i < j; i++ {
			if cls[i] == i && samePlan(threads[i], threads[j]) {
				cls[j] = i
				break
			}
		}
	}
	return cls
}

func samePlan(a, b []stm.PlanTxn) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// childSleep filters the state's sleep set down to the threads whose next
// step is independent of the step being taken — the sleep set the child
// state inherits.
func (e *explorer) childSleep(st *stepper, stateSleep uint64, taken int) uint64 {
	if e.cfg.DisableSleepSets || stateSleep == 0 {
		return 0
	}
	td, ok := nextStepDesc(st.threads[taken], taken)
	if !ok {
		return 0
	}
	var child uint64
	for m := stateSleep; m != 0; m &= m - 1 {
		zi := bits.TrailingZeros64(m)
		zd, ok := nextStepDesc(st.threads[zi], zi)
		if ok && independentSteps(e.engine, zd, td) {
			child |= 1 << uint(zi)
		}
	}
	return child
}

// stepDesc describes a thread's next step for the independence relation.
type stepDesc struct {
	thread int
	begin  bool // the step begins an attempt (first event of a transaction)
	commit bool // the step is the tryC
	read   bool
	obj    int
}

// nextStepDesc derives the thread's next step from its state and plan; ok
// is false for finished threads.
func nextStepDesc(t *vthread, idx int) (stepDesc, bool) {
	if t.done {
		return stepDesc{}, false
	}
	d := stepDesc{thread: idx}
	next := t.opIdx
	if t.tx == nil {
		d.begin = true
		next = 0
	}
	ops := t.plan[t.txnIdx]
	if next >= len(ops) {
		d.commit = true
		return d, true
	}
	d.read = ops[next].Read
	d.obj = ops[next].Obj
	return d, true
}

// independentSteps is the engine-aware independence relation of the sleep
// sets. It must under-approximate true commutativity: claiming two steps
// independent asserts that executing them in either order yields the same
// engine state, the same event outcomes, and — because neither begins nor
// completes a transaction — a recorded history of equal verdict (the only
// order-sensitive inputs to the implemented criteria are real-time order,
// set by t-completions vs first events, and the position of read responses
// relative to tryC invocations; none participate in a swap of two plain
// operation steps). Steps that could abort are therefore never claimed
// independent: an abort is a t-completion.
func independentSteps(engine string, a, b stepDesc) bool {
	if a.thread == b.thread {
		return false
	}
	if a.begin || b.begin || a.commit || b.commit {
		return false
	}
	// The relation is keyed on the base engine: CM suffixes change only
	// how long conflicting steps wait, never which steps can conflict.
	switch engines.Base(engine) {
	case "tl2", "norec", "pdur":
		// Deferred-update with buffered, invisible writes: a mid-
		// transaction write mutates only transaction-local state and never
		// aborts, so two writes commute regardless of object. Reads can
		// abort (version/value validation), which would end the
		// transaction and shift real-time order — never independent.
		return !a.read && !b.read
	case "ple":
		// In-place, abort-free: reads are unvalidated loads that never
		// fail and writes mutate the object (and the writer lock) in
		// place. Read/read always commutes; read/write commutes on
		// distinct objects (the read's value and the write's effect cannot
		// observe each other, and reads never touch the writer lock).
		// Write/write pairs are never co-enabled under the writer lock,
		// but are conservatively declared dependent anyway.
		if a.read && b.read {
			return true
		}
		if a.read != b.read {
			return a.obj != b.obj
		}
		return false
	default:
		// gl serializes whole transactions (no co-enabled mid-transaction
		// steps exist); dstm acquires ownership at writes and validates
		// whole read sets at reads; etl/etl+v write in place with
		// encounter-time locks and may abort at any operation. No
		// independence is claimed.
		return false
	}
}

// FormatExploreTable renders exploration reports as an aligned table, one
// row per report, with the pinned violation (if any) below.
func FormatExploreTable(reports []ExploreReport) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tplan(thr/txn/op)\tcriterion\toutcome\tschedules\tcut\tsleep\tsym\tsteps")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d/%d/%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Engine, len(r.Plan.Threads), r.Plan.NumTxns(), r.Plan.NumOps(),
			r.Criterion, r.Outcome, r.Schedules, r.PrefixCut, r.SleepPruned, r.SymmetryPruned, r.Steps)
	}
	_ = tw.Flush()
	for _, r := range reports {
		if r.Violation != nil {
			fmt.Fprintf(&b, "%s violation at event %d, schedule %v: %s\n",
				r.Engine, r.Violation.At, r.Violation.Schedule, r.Violation.Verdict.Reason)
		}
	}
	return b.String()
}
