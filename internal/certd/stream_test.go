package certd

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startStreams spins a stream listener for s on a loopback port.
func startStreams(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeStreams(ln) }()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String()
}

type streamConn struct {
	c net.Conn
	w *bufio.Writer
	r *bufio.Scanner
}

func dialStream(t *testing.T, addr, hello string) *streamConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	_ = c.SetDeadline(time.Now().Add(30 * time.Second))
	sc := &streamConn{c: c, w: bufio.NewWriter(c), r: bufio.NewScanner(c)}
	fmt.Fprintln(sc.w, hello)
	if err := sc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sc
}

func (sc *streamConn) send(t *testing.T, lines ...string) {
	t.Helper()
	for _, l := range lines {
		fmt.Fprintln(sc.w, l)
	}
	if err := sc.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// collect reads every response line until the connection closes.
func (sc *streamConn) collect(t *testing.T) []string {
	t.Helper()
	var out []string
	for sc.r.Scan() {
		out = append(out, sc.r.Text())
	}
	return out
}

func lastPrefixed(lines []string, prefix string) string {
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.HasPrefix(lines[i], prefix) {
			return lines[i]
		}
	}
	return ""
}

// TestStreamVerdicts drives a clean two-criterion stream end to end: OK
// hello, per-event echoes with verdict columns, final verdicts, DONE.
func TestStreamVerdicts(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM du,opacity")
	sc.send(t,
		"write 1 X 1",
		"commit 1",
		"read 2 X 1",
		"commit 2",
		"END",
	)
	lines := sc.collect(t)
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "OK ") {
		t.Fatalf("no OK hello: %q", lines)
	}
	done := lastPrefixed(lines, "DONE ")
	if done != "DONE events=8 bad=0 dropped=0 violations=0" {
		t.Fatalf("DONE line wrong: %q\nall: %q", done, lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "du-opacity: OK") || !strings.Contains(joined, "opacity: OK") {
		t.Fatalf("final verdicts missing:\n%s", joined)
	}
	// Per-event echoes carry verdict columns on response events.
	if !strings.Contains(joined, "du-opacity:ok") {
		t.Fatalf("per-event verdict columns missing:\n%s", joined)
	}
	if got := s.Metrics.StreamEvents.Load(); got != 8 {
		t.Fatalf("StreamEvents = %d, want 8", got)
	}
}

// TestStreamViolation: an early read (deferred-update violation) latches
// and shows up in the final verdict and the DONE counters.
func TestStreamViolation(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM du quiet")
	sc.send(t,
		"inv write 1 X 5",
		"res write 1 X 5 ok",
		"read 2 X 5", // reads uncommitted state: du-opacity violation
		"commit 2",
		"commit 1",
		"END",
	)
	lines := sc.collect(t)
	done := lastPrefixed(lines, "DONE ")
	if !strings.Contains(done, "violations=1") {
		t.Fatalf("violation not in DONE: %q\nall: %q", done, lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "du-opacity: violated") {
		t.Fatalf("final verdict not violated:\n%s", joined)
	}
}

// TestStreamBadInputPolicies pins the three bad-input policies of
// ducheck -follow on the wire: default notes BAD lines, skipbad
// quarantines with a ledger, strict kills the stream with ERR.
func TestStreamBadInputPolicies(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)

	t.Run("default", func(t *testing.T) {
		sc := dialStream(t, addr, "STREAM du quiet")
		sc.send(t, "write 1 X 1", "this is not an event", "commit 1", "END")
		lines := sc.collect(t)
		if bad := lastPrefixed(lines, "BAD "); !strings.HasPrefix(bad, "BAD 2 ") {
			t.Fatalf("no BAD note for line 2: %q", lines)
		}
		if done := lastPrefixed(lines, "DONE "); !strings.Contains(done, "events=4 bad=1") {
			t.Fatalf("DONE wrong: %q", lines)
		}
	})

	t.Run("skipbad", func(t *testing.T) {
		sc := dialStream(t, addr, "STREAM du quiet skipbad")
		sc.send(t, "write 1 X 1", "garbage", "more garbage", "commit 1", "END")
		lines := sc.collect(t)
		joined := strings.Join(lines, "\n")
		if strings.Contains(joined, "BAD ") {
			t.Fatalf("skipbad noted lines: %q", lines)
		}
		if !strings.Contains(joined, "QUARANTINED 2 bad input line(s):") {
			t.Fatalf("quarantine ledger missing:\n%s", joined)
		}
		if !strings.Contains(joined, "follow: events=4 bad=2") {
			t.Fatalf("summary line missing:\n%s", joined)
		}
	})

	t.Run("strict", func(t *testing.T) {
		sc := dialStream(t, addr, "STREAM du quiet strict")
		sc.send(t, "write 1 X 1", "garbage", "commit 1", "END")
		lines := sc.collect(t)
		errLine := lastPrefixed(lines, "ERR ")
		if !strings.Contains(errLine, "line 2:") {
			t.Fatalf("strict did not fail on line 2: %q", lines)
		}
		if lastPrefixed(lines, "DONE ") != "" {
			t.Fatalf("strict stream still finished: %q", lines)
		}
	})
}

// TestStreamAdmissionControl: past MaxStreams the hello is refused with
// an explicit ERR busy (the 429 analog), observable in the metrics.
func TestStreamAdmissionControl(t *testing.T) {
	s := NewServer(Config{MaxStreams: 1})
	addr := startStreams(t, s)

	first := dialStream(t, addr, "STREAM du quiet")
	if !first.r.Scan() || !strings.HasPrefix(first.r.Text(), "OK ") {
		t.Fatalf("first stream refused: %q", first.r.Text())
	}
	second := dialStream(t, addr, "STREAM du quiet")
	if !second.r.Scan() || second.r.Text() != "ERR busy" {
		t.Fatalf("second stream not refused: %q", second.r.Text())
	}
	if got := s.Metrics.StreamsRejected.Load(); got != 1 {
		t.Fatalf("StreamsRejected = %d, want 1", got)
	}
	// Finishing the first stream frees the slot.
	first.send(t, "END")
	first.collect(t)
	third := dialStream(t, addr, "STREAM du quiet")
	if !third.r.Scan() || !strings.HasPrefix(third.r.Text(), "OK ") {
		t.Fatalf("slot not freed after stream end: %q", third.r.Text())
	}
}

// TestStreamLossyBackpressure: a slow consumer with a tiny queue and a
// lossy stream drops overflow, counts it, and reports it — bounded
// memory, no silent loss.
func TestStreamLossyBackpressure(t *testing.T) {
	s := NewServer(Config{StreamQueue: 2, SlowAppend: 2 * time.Millisecond})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM du quiet lossy")
	lines := make([]string, 0, 401)
	for i := 1; i <= 200; i++ {
		lines = append(lines, fmt.Sprintf("write %d X %d", i, i), fmt.Sprintf("commit %d", i))
	}
	lines = append(lines, "END")
	sc.send(t, lines...)
	out := sc.collect(t)
	done := lastPrefixed(out, "DONE ")
	var events, bad, dropped, violations int64
	if _, err := fmt.Sscanf(done, "DONE events=%d bad=%d dropped=%d violations=%d", &events, &bad, &dropped, &violations); err != nil {
		t.Fatalf("unparsable DONE %q: %v", done, err)
	}
	if dropped == 0 {
		t.Fatalf("lossy slow stream dropped nothing: %q", done)
	}
	if events+2*dropped != 800 {
		// Each dropped line loses two events (shorthand inv+res).
		t.Fatalf("events (%d) + 2*dropped (%d) != 800 sent", events, dropped)
	}
	if got := s.Metrics.StreamDropped.Load(); got != dropped {
		t.Fatalf("statsz dropped %d != DONE dropped %d", got, dropped)
	}
}

// TestStreamBlockingBackpressure: without lossy, a full queue pauses the
// reader — counted as stalls — and every event is still monitored.
func TestStreamBlockingBackpressure(t *testing.T) {
	s := NewServer(Config{StreamQueue: 2, SlowAppend: time.Millisecond})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM du quiet")
	lines := make([]string, 0, 101)
	for i := 1; i <= 50; i++ {
		lines = append(lines, fmt.Sprintf("write %d X %d", i, i), fmt.Sprintf("commit %d", i))
	}
	lines = append(lines, "END")
	sc.send(t, lines...)
	out := sc.collect(t)
	done := lastPrefixed(out, "DONE ")
	if !strings.Contains(done, "events=200 bad=0 dropped=0") {
		t.Fatalf("blocking stream lost events: %q", done)
	}
	if s.Metrics.StreamStalls.Load() == 0 {
		t.Fatalf("slow blocking stream recorded no stalls")
	}
}

// TestStreamReadErrorFailsStream: an input line past the scanner's 1MB
// limit is a read error, not a clean end — the stream fails with an
// explicit ERR line and never emits a DONE that pretends completion.
// net.Pipe keeps the exchange deterministic (no kernel buffers, no RST).
func TestStreamReadErrorFailsStream(t *testing.T) {
	s := NewServer(Config{})
	srv, cli := net.Pipe()
	defer cli.Close()
	_ = cli.SetDeadline(time.Now().Add(30 * time.Second))
	handlerDone := make(chan struct{})
	go func() {
		s.handleStream(srv)
		close(handlerDone)
	}()
	go func() {
		w := bufio.NewWriter(cli)
		fmt.Fprintln(w, "STREAM du quiet")
		_ = w.Flush()
		fmt.Fprintln(w, "write 1 X 1")
		fmt.Fprint(w, strings.Repeat("x", 2<<20)) // no newline within 1MB
		_ = w.Flush()                             // errors once the server gives up — fine
	}()
	r := bufio.NewScanner(cli)
	var lines []string
	for r.Scan() {
		lines = append(lines, r.Text())
	}
	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("stream handler did not return")
	}
	if errLine := lastPrefixed(lines, "ERR read:"); errLine == "" {
		t.Fatalf("oversized line not failed with ERR read: %q", lines)
	}
	if lastPrefixed(lines, "DONE ") != "" {
		t.Fatalf("truncated stream still emitted DONE: %q", lines)
	}
}

// TestStreamDeadClientReleasesReader: a blocking (non-lossy) client that
// sends a burst and vanishes without reading must not leak the stream's
// reader goroutine — the consumer's exit unblocks a stalled queue send.
func TestStreamDeadClientReleasesReader(t *testing.T) {
	s := NewServer(Config{StreamQueue: 1, SlowAppend: 200 * time.Microsecond})
	addr := startStreams(t, s)
	before := runtime.NumGoroutine()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.SetDeadline(time.Now().Add(30 * time.Second))
	w := bufio.NewWriter(c)
	fmt.Fprintln(w, "STREAM du")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewScanner(c)
	if !r.Scan() || !strings.HasPrefix(r.Text(), "OK ") {
		t.Fatalf("no OK hello: %q", r.Text())
	}
	// A burst big enough that (a) the echoes blow past the 32KB flush
	// threshold and (b) lines are still queued behind the slow consumer
	// when it detects the dead client.
	for i := 1; i <= 1500; i++ {
		fmt.Fprintf(w, "write %d X %d\n", i, i)
	}
	_ = w.Flush() // the server may already have given up on us; errors are fine
	_ = c.Close() // vanish without ever reading the echoes

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("stream goroutines leaked after dead client: %d before, %d now",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if open := s.Metrics.StreamsOpen.Load(); open != 0 {
		t.Fatalf("StreamsOpen = %d after dead client", open)
	}
}

// TestStreamHelloErrors: malformed helloes and non-monitorable criteria
// are refused with explicit ERR lines.
func TestStreamHelloErrors(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	for _, hello := range []string{
		"NOT A HELLO",
		"STREAM nope",
		"STREAM strictser", // batch-only: no online monitor
		"STREAM du retire=x",
		"STREAM du skipbad strict",
	} {
		sc := dialStream(t, addr, hello)
		if !sc.r.Scan() || !strings.HasPrefix(sc.r.Text(), "ERR ") {
			t.Errorf("hello %q not refused: %q", hello, sc.r.Text())
		}
	}
}

// TestStreamConflictOrderCriteria: the TMS2 and RCO monitors are served
// over the wire like the others — the hello accepts them, per-event
// verdict columns and final verdicts stream back, and a Figure-6-shaped
// stream trips TMS2 (latched, counted in DONE) while RCO stays OK.
func TestStreamConflictOrderCriteria(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)

	// Clean stream: both criteria accept, columns echo per response.
	sc := dialStream(t, addr, "STREAM tms2,rco")
	sc.send(t,
		"write 1 X 1",
		"commit 1",
		"read 2 X 1",
		"commit 2",
		"END",
	)
	lines := sc.collect(t)
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "OK ") {
		t.Fatalf("no OK hello: %q", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "TMS2:ok") || !strings.Contains(joined, "rco-opacity:ok") {
		t.Fatalf("per-event verdict columns missing:\n%s", joined)
	}
	if !strings.Contains(joined, "TMS2: OK") || !strings.Contains(joined, "rco-opacity: OK") {
		t.Fatalf("final verdicts missing:\n%s", joined)
	}
	if done := lastPrefixed(lines, "DONE "); !strings.Contains(done, "violations=0") {
		t.Fatalf("DONE wrong: %q", done)
	}

	// Figure 6: TMS2 orders committed writer T1 before reader T2, whose
	// read of the pre-state then has no legal serialization; RCO accepts.
	sc = dialStream(t, addr, "STREAM tms2,rco quiet")
	sc.send(t,
		"read 1 X 0",
		"write 1 X 1",
		"read 2 X 0",
		"commit 1",
		"write 2 Y 1",
		"commit 2",
		"END",
	)
	lines = sc.collect(t)
	joined = strings.Join(lines, "\n")
	if !strings.Contains(joined, "TMS2: violated") {
		t.Fatalf("TMS2 did not latch the figure-6 violation:\n%s", joined)
	}
	if !strings.Contains(joined, "rco-opacity: OK") {
		t.Fatalf("RCO should accept figure 6:\n%s", joined)
	}
	if done := lastPrefixed(lines, "DONE "); !strings.Contains(done, "violations=1") {
		t.Fatalf("DONE wrong: %q", done)
	}
}

// TestStreamConflictOrderRetirement: TMS2's incremental edge state is
// checkpointed with the retirement window — a long stream stays bounded
// and decided, mirroring ducheck -follow -criteria tms2 -retire.
func TestStreamConflictOrderRetirement(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM tms2 retire=4 quiet")
	lines := make([]string, 0, 81)
	for i := 1; i <= 40; i++ {
		lines = append(lines, fmt.Sprintf("write %d X %d", i, i), fmt.Sprintf("commit %d", i))
	}
	lines = append(lines, "END")
	sc.send(t, lines...)
	out := sc.collect(t)
	joined := strings.Join(out, "\n")
	if strings.Contains(joined, "undecided") || strings.Contains(joined, "violated") {
		t.Fatalf("TMS2 degraded under retirement:\n%s", joined)
	}
	var evs, retired, live int
	if _, err := fmt.Sscanf(lastPrefixed(out, "TMS2: "), "TMS2: %d events, %d transactions retired, %d live", &evs, &retired, &live); err != nil {
		t.Fatalf("retirement summary missing or unparsable:\n%s", joined)
	}
	if retired == 0 || live > 9 {
		t.Fatalf("retirement not bounding the window: retired=%d live=%d", retired, live)
	}
}

// TestStreamRetirement: the retirement window bounds monitor memory on a
// long stream and the summary reports retired transactions, mirroring
// ducheck -follow -retire.
func TestStreamRetirement(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	sc := dialStream(t, addr, "STREAM du retire=4 quiet")
	lines := make([]string, 0, 81)
	for i := 1; i <= 40; i++ {
		lines = append(lines, fmt.Sprintf("write %d X %d", i, i), fmt.Sprintf("commit %d", i))
	}
	lines = append(lines, "END")
	sc.send(t, lines...)
	out := sc.collect(t)
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "transactions retired") {
		t.Fatalf("retirement summary missing:\n%s", joined)
	}
	var evs, retired, live int
	if _, err := fmt.Sscanf(lastPrefixed(out, "du-opacity: "), "du-opacity: %d events, %d transactions retired, %d live", &evs, &retired, &live); err == nil {
		if retired == 0 || live > 5 {
			t.Fatalf("retirement not bounding the window: retired=%d live=%d", retired, live)
		}
	}
}
