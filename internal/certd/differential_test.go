package certd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"duopacity/internal/checkfarm"
	"duopacity/internal/harness"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

// startFarm spins an in-process coordinator with nWorkers pull workers
// over real HTTP and returns a client. Everything tears down with the
// test.
func startFarm(t *testing.T, cfg Config, nWorkers int) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.ExpireLoop(ctx)
	for i := 0; i < nWorkers; i++ {
		w := &Worker{Client: c, Name: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond}
		go func() { _ = w.Run(ctx) }()
	}
	return s, c
}

func submitAndWait(t *testing.T, c *Client, job checkfarm.JobSpec) *JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id, _, err := c.Submit(ctx, job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if st.State != JobDone {
		t.Fatalf("job %s finished %s: %s", id, st.State, st.Err)
	}
	return st
}

// TestDistributedCertifyByteIdentical is the acceptance gate: a
// certification sliced into leases, computed by networked workers, and
// folded by the coordinator renders byte-for-byte what the in-process
// farm renders for the same spec.
func TestDistributedCertifyByteIdentical(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity, spec.Serializability}
	cfg := harness.CertConfig{
		Workload: harness.Workload{Engine: "tl2", Objects: 3, Goroutines: 3, TxnsPerGoroutine: 2, OpsPerTxn: 3, Seed: 99},
		Episodes: 10, Interleaved: true,
	}
	local, err := checkfarm.Certify(context.Background(), cfg, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := checkfarm.JobSpec{Kind: checkfarm.KindCertify, Certify: &checkfarm.CertifyJob{Config: cfg, Criteria: criteria}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := harness.FormatCertTable(local, criteria)

	_, c := startFarm(t, Config{LeaseTTL: 2 * time.Second}, 3)
	st := submitAndWait(t, c, spec2)
	if st.Formatted != want {
		t.Fatalf("distributed certification diverged from in-process farm:\nlocal:\n%s\ndistributed:\n%s", want, st.Formatted)
	}
	if st.Degraded != 0 {
		t.Fatalf("healthy run degraded %d shard(s)", st.Degraded)
	}
}

func TestDistributedExploreByteIdentical(t *testing.T) {
	plans := []stm.Plan{
		stm.MustParsePlan("w0 | r0 r1\nw1"),
		stm.MustParsePlan("r0 w1\nr1 w0"),
	}
	local, err := checkfarm.ExplorePlans(context.Background(), "gl", plans, harness.ExploreConfig{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := harness.FormatExploreTable(local)

	wire := make([]checkfarm.WirePlan, len(plans))
	for i, p := range plans {
		wire[i] = checkfarm.WirePlanOf(p)
	}
	_, c := startFarm(t, Config{LeaseTTL: 2 * time.Second}, 2)
	st := submitAndWait(t, c, checkfarm.JobSpec{Kind: checkfarm.KindExplore, Explore: &checkfarm.ExploreJob{Engine: "gl", Plans: wire}})
	if st.Formatted != want {
		t.Fatalf("distributed exploration diverged:\nlocal:\n%s\ndistributed:\n%s", want, st.Formatted)
	}
}

func TestDistributedSoakByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak differential is not -short")
	}
	cfg := checkfarm.SoakConfig{
		Engines:  []string{"gl", "norec"},
		Criteria: []spec.Criterion{spec.DUOpacity, spec.Serializability},
		Rounds:   2,
		Seed:     11,
	}
	local, err := checkfarm.Soak(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	job, err := checkfarm.JobSpec{Kind: checkfarm.KindSoak, Soak: &checkfarm.SoakJob{Config: cfg}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := checkfarm.FormatSoakReport(job.Soak.Config, local)

	_, c := startFarm(t, Config{LeaseTTL: 5 * time.Second}, 2)
	st := submitAndWait(t, c, job)
	if st.Formatted != want {
		t.Fatalf("distributed soak diverged:\nlocal:\n%s\ndistributed:\n%s", want, st.Formatted)
	}
}

// TestWorkerDiesMidRunRequeues kills a worker holding a lease (it leases
// and never returns) while a healthy worker keeps polling: the lease
// expires, the healthy worker completes the shard, and nothing degrades.
func TestWorkerDiesMidRunRequeues(t *testing.T) {
	s, c := startFarm(t, Config{LeaseTTL: 150 * time.Millisecond}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	id, _, err := c.Submit(ctx, checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	// The doomed worker grabs the shard and dies (no heartbeat).
	g, ok, err := c.Lease(ctx, "doomed")
	if err != nil || !ok {
		t.Fatalf("doomed lease: %v ok=%v", err, ok)
	}
	_ = g
	// A healthy worker joins after the fact.
	go func() {
		w := &Worker{Client: c, Name: "healthy", Poll: 10 * time.Millisecond}
		_ = w.Run(ctx)
	}()

	st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Degraded != 0 {
		t.Fatalf("requeue after worker death failed: %+v", st)
	}
	if s.Metrics.LeasesExpired.Load() < 1 || s.Metrics.ShardsRequeued.Load() < 1 {
		t.Fatalf("expiry not recorded: expired=%d requeued=%d",
			s.Metrics.LeasesExpired.Load(), s.Metrics.ShardsRequeued.Load())
	}
}

// TestAllWorkersDeadDegrades: with every worker dead, the janitor alone
// burns the attempts and the job completes with explicit degraded
// artifacts — never a hung or failed coordinator.
func TestAllWorkersDeadDegrades(t *testing.T) {
	s, c := startFarm(t, Config{LeaseTTL: 60 * time.Millisecond, MaxShardAttempts: 2}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	id, _, err := c.Submit(ctx, checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Two doomed workers each lease and die; the janitor (ExpireLoop)
	// reclaims both grants with no one left polling.
	for i := 0; i < 2; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, ok, err := c.Lease(ctx, fmt.Sprintf("doomed%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard never became leasable for doomed worker %d", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	st, err := c.WaitJob(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Degraded != 1 {
		t.Fatalf("dead-fleet job status: %+v", st)
	}
	if !strings.Contains(st.Formatted, "degraded") {
		t.Fatalf("report hides the degradation:\n%s", st.Formatted)
	}
	if s.Metrics.ShardsDegraded.Load() != 1 {
		t.Fatalf("ShardsDegraded = %d, want 1", s.Metrics.ShardsDegraded.Load())
	}
}

// TestHealthzStatsz smoke-tests the ops surface end to end.
func TestHealthzStatsz(t *testing.T) {
	_, c := startFarm(t, Config{}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	submitAndWait(t, c, checkJobSpec("write 1 X 1\ncommit 1\n"))
	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs.Submitted != 1 || snap.Jobs.Done != 1 || snap.Jobs.ShardsDone != 1 {
		t.Fatalf("statsz wrong: %+v", snap.Jobs)
	}
	if snap.Jobs.Open != 0 {
		t.Fatalf("finished job still open in statsz: %+v", snap.Jobs)
	}
}
