package certd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"duopacity/internal/checkfarm"
)

// Client talks to a coordinator's HTTP surface. Base is the coordinator
// URL without a trailing slash ("http://host:port").
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	case http.StatusNoContent:
		return errNoContent
	case http.StatusGone:
		return errGone
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("certd: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
}

var (
	errNoContent = fmt.Errorf("certd: no content")
	errGone      = fmt.Errorf("certd: lease gone")
)

// Submit sends a job and returns its id and shard count.
func (c *Client) Submit(ctx context.Context, spec checkfarm.JobSpec) (string, int, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", SubmitRequest{Spec: spec}, &resp); err != nil {
		return "", 0, err
	}
	return resp.ID, resp.Shards, nil
}

// Lease pulls one shard; ok is false when the coordinator has no work.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseGrant, bool, error) {
	var g LeaseGrant
	err := c.do(ctx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker}, &g)
	if err == errNoContent {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return &g, true, nil
}

// Heartbeat extends a lease; ok is false when the lease is gone and the
// worker should abandon the shard.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) (bool, error) {
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{LeaseID: leaseID}, nil)
	if err == errGone {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Result delivers a shard outcome (idempotent on the coordinator).
func (c *Client) Result(ctx context.Context, req ResultRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/result", req, nil)
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls until the job reaches a terminal state.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == JobDone || st.State == JobFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Stats fetches the /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var s StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
