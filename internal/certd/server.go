package certd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"duopacity/internal/checkfarm"
)

// Config parameterizes a coordinator. The zero value is usable; every
// field has a default.
type Config struct {
	// LeaseTTL is how long a granted shard stays owned without a
	// heartbeat (default 3s). Heartbeats extend the lease by a full TTL.
	LeaseTTL time.Duration
	// MaxShardAttempts bounds how many grants a shard gets before the
	// coordinator gives up and folds a degraded artifact in its place
	// (default 3, matching the in-process farm's panic retries).
	MaxShardAttempts int
	// FoldJobs bounds the fold's own compute pool (soak divergence
	// shrinking; default GOMAXPROCS).
	FoldJobs int
	// MaxStreams caps concurrently open monitor streams; helloes past the
	// cap are refused with "ERR busy" (default 256).
	MaxStreams int
	// StreamQueue is the per-stream input queue depth (default 256
	// lines). A full queue stalls the reader (default) or drops (lossy
	// streams) — never grows.
	StreamQueue int
	// SlowAppend artificially delays every monitor append — a test knob
	// for making backpressure observable deterministically.
	SlowAppend time.Duration
	// Clock overrides time.Now for lease bookkeeping — a test knob for
	// deterministic expiry.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = 3
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
	if c.StreamQueue <= 0 {
		c.StreamQueue = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

const (
	shardPending = iota
	shardLeased
	shardDone
)

type job struct {
	id       string
	spec     checkfarm.JobSpec // normalized
	n        int
	state    []int
	attempts []int
	results  []*checkfarm.ShardResult
	pending  []int // FIFO of pending shard indices
	done     int
	leased   int
	degraded int

	folded    bool
	foldErr   error
	formatted string
	report    *checkfarm.JobReport
	foldedCh  chan struct{} // closed when the fold finishes
}

type lease struct {
	id      string
	jobID   string
	shard   int
	worker  string
	expires time.Time
}

// Server is the certd coordinator: the job/lease state machine, its HTTP
// surface (Handler), and the stream listener (ServeStreams).
type Server struct {
	cfg     Config
	Metrics Metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order; leases are granted oldest-job-first
	leases   map[string]*lease
	seq      int64
	draining bool

	streams   sync.WaitGroup
	streamMu  sync.Mutex
	streamLns []interface{ Close() error }
	conns     map[interface{ Close() error }]struct{}
}

// NewServer builds a coordinator. Run ExpireLoop (or poke Expire from
// tests) to reclaim leases whose workers died; lease checks also happen
// lazily on every lease and heartbeat call.
func NewServer(cfg Config) *Server {
	return &Server{
		cfg:    cfg.withDefaults(),
		jobs:   make(map[string]*job),
		leases: make(map[string]*lease),
		conns:  make(map[interface{ Close() error }]struct{}),
	}
}

// Submit registers a job and returns its id. The spec is normalized
// here, once, so every worker sees identical defaults.
func (s *Server) Submit(spec checkfarm.JobSpec) (string, int, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return "", 0, err
	}
	n := spec.NumShards()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", 0, fmt.Errorf("certd: coordinator is draining")
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%d", s.seq),
		spec:     spec,
		n:        n,
		state:    make([]int, n),
		attempts: make([]int, n),
		results:  make([]*checkfarm.ShardResult, n),
		pending:  make([]int, 0, n),
		foldedCh: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		j.pending = append(j.pending, i)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.Metrics.JobsSubmitted.Add(1)
	return j.id, n, nil
}

// Lease grants the oldest pending shard to a worker, or returns nil when
// no work is available. Expired leases are reclaimed first, so a polling
// worker doubles as the liveness scan.
func (s *Server) Lease(worker string) *LeaseGrant {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if s.draining {
		return nil
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if len(j.pending) == 0 {
			continue
		}
		shard := j.pending[0]
		j.pending = j.pending[1:]
		j.state[shard] = shardLeased
		j.leased++
		j.attempts[shard]++
		s.seq++
		l := &lease{
			id:      fmt.Sprintf("L%d", s.seq),
			jobID:   j.id,
			shard:   shard,
			worker:  worker,
			expires: s.cfg.Clock().Add(s.cfg.LeaseTTL),
		}
		s.leases[l.id] = l
		s.Metrics.LeasesGranted.Add(1)
		return &LeaseGrant{
			JobID:     j.id,
			Shard:     shard,
			LeaseID:   l.id,
			TTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			Spec:      j.spec,
		}
	}
	return nil
}

// Heartbeat extends a lease by a full TTL; false means the lease is gone
// (expired and reclaimed, or its shard already resolved).
func (s *Server) Heartbeat(leaseID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, ok := s.leases[leaseID]
	if !ok {
		return false
	}
	l.expires = s.cfg.Clock().Add(s.cfg.LeaseTTL)
	return true
}

// Result folds one shard outcome. Idempotent: a result for an
// already-done shard — a retried delivery, or a slow worker racing the
// requeue — is an acknowledged no-op. An Err outcome requeues the shard
// (or degrades it past its attempts).
func (s *Server) Result(req ResultRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[req.JobID]
	if !ok {
		return fmt.Errorf("certd: unknown job %q", req.JobID)
	}
	if req.Shard < 0 || req.Shard >= j.n {
		return fmt.Errorf("certd: job %s has no shard %d", req.JobID, req.Shard)
	}
	// Release the delivering lease regardless of outcome; the leased
	// count is settled by requeueLocked/resolveLocked below. Whether the
	// lease still owned its shard decides the error path.
	owned := false
	if l, ok := s.leases[req.LeaseID]; ok && l.jobID == req.JobID && l.shard == req.Shard {
		delete(s.leases, req.LeaseID)
		owned = true
	}
	if j.state[req.Shard] == shardDone {
		return nil // duplicate delivery
	}
	if req.Err != "" {
		// Only the lease that still owns the shard may requeue it. A
		// stale Err — the lease expired and the shard is already back in
		// the queue or re-leased — already had its requeue; acting on it
		// again would enqueue the shard twice.
		if owned && j.state[req.Shard] == shardLeased {
			s.requeueLocked(j, req.Shard, fmt.Sprintf("worker %s: %s", req.Worker, req.Err))
		}
		return nil
	}
	if req.Result == nil {
		return fmt.Errorf("certd: result for job %s shard %d carries neither a result nor an error", req.JobID, req.Shard)
	}
	s.resolveLocked(j, req.Shard, req.Result)
	return nil
}

// Expire reclaims every lease past its deadline: the shard goes back to
// the pending queue, or — past MaxShardAttempts grants — degrades into
// the explicit dead-worker artifact. Safe to call from a ticker.
func (s *Server) Expire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
}

func (s *Server) expireLocked() {
	now := s.cfg.Clock()
	for id, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(s.leases, id)
		s.Metrics.LeasesExpired.Add(1)
		j := s.jobs[l.jobID]
		if j == nil || j.state[l.shard] != shardLeased {
			continue
		}
		s.requeueLocked(j, l.shard, fmt.Sprintf("worker %s: lease expired", l.worker))
	}
}

// requeueLocked returns a shard to the queue, or degrades it once its
// grants are spent. It settles the leased count for a shard coming off a
// lease.
func (s *Server) requeueLocked(j *job, shard int, reason string) {
	if j.state[shard] == shardLeased {
		j.leased--
		j.state[shard] = shardPending
	}
	if j.attempts[shard] >= s.cfg.MaxShardAttempts {
		res := j.spec.DegradedShard(shard, fmt.Sprintf("%s (attempt %d/%d)", reason, j.attempts[shard], s.cfg.MaxShardAttempts))
		s.Metrics.ShardsDegraded.Add(1)
		j.degraded++
		s.resolveLocked(j, shard, &res)
		return
	}
	j.state[shard] = shardPending
	j.pending = append(j.pending, shard)
	s.Metrics.ShardsRequeued.Add(1)
}

// resolveLocked marks a shard done and kicks the fold when it was the
// last one. The fold runs outside the lock (soak folds shrink
// counterexamples — real compute). Any lease still pointing at the shard
// — a second worker racing a stale delivery — is released; its eventual
// result lands as a duplicate no-op.
func (s *Server) resolveLocked(j *job, shard int, res *checkfarm.ShardResult) {
	if j.state[shard] == shardDone {
		return // racing duplicate — the first resolution stands
	}
	for id, l := range s.leases {
		if l.jobID == j.id && l.shard == shard {
			delete(s.leases, id)
		}
	}
	if j.state[shard] == shardLeased {
		j.leased--
	}
	// A stale result can land while the shard sits requeued in the
	// pending FIFO (lease expired, delivery raced the re-lease): pull it
	// out so a later Lease can't grant an already-done shard.
	for i, p := range j.pending {
		if p == shard {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			break
		}
	}
	j.state[shard] = shardDone
	j.results[shard] = res
	j.done++
	s.Metrics.ShardsDone.Add(1)
	if j.done == j.n {
		go s.fold(j)
	}
}

func (s *Server) fold(j *job) {
	rep, err := checkfarm.FoldJob(context.Background(), j.spec, j.results, s.cfg.FoldJobs)
	s.mu.Lock()
	j.folded = true
	if err != nil {
		j.foldErr = err
		s.Metrics.JobsFailed.Add(1)
	} else {
		j.report = rep
		j.formatted = checkfarm.FormatJobReport(j.spec, rep)
		s.Metrics.JobsDone.Add(1)
	}
	s.mu.Unlock()
	close(j.foldedCh)
}

// Status reports a job's progress; the formatted report appears once the
// fold lands.
func (s *Server) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("certd: unknown job %q", id)
	}
	st := &JobStatus{
		ID: j.id, Kind: j.spec.Kind, Shards: j.n,
		Done: j.done, Leased: j.leased, Degraded: j.degraded,
	}
	switch {
	case j.foldErr != nil:
		st.State = JobFailed
		st.Err = j.foldErr.Error()
	case j.folded:
		st.State = JobDone
		st.Formatted = j.formatted
	case j.done == j.n:
		st.State = JobFolding
	default:
		st.State = JobRunning
	}
	return st, nil
}

// Report blocks until the job's fold lands and returns the structured
// report — the in-process path for embedders and tests.
func (s *Server) Report(ctx context.Context, id string) (*checkfarm.JobReport, string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, "", fmt.Errorf("certd: unknown job %q", id)
	}
	select {
	case <-j.foldedCh:
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.foldErr != nil {
		return nil, "", j.foldErr
	}
	return j.report, j.formatted, nil
}

// Drain gracefully shuts the coordinator down: no new jobs, no new
// leases, no new streams. Every shard still pending or outstanding
// degrades into its explicit dead-worker artifact so every job folds and
// completes — a drained coordinator never leaves a submitter hanging.
// Open streams are closed (the listener first, then — once ctx expires —
// any connection still open). Returns once every job has folded and
// every stream handler has returned, or with ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var open []*job
	for id, l := range s.leases {
		delete(s.leases, id)
		j := s.jobs[l.jobID]
		if j != nil && j.state[l.shard] == shardLeased {
			j.leased--
			j.state[l.shard] = shardPending
			j.pending = append(j.pending, l.shard)
		}
	}
	for _, id := range s.order {
		j := s.jobs[id]
		pending := j.pending
		j.pending = nil // detach before resolving: resolveLocked edits j.pending
		for _, shard := range pending {
			if j.state[shard] == shardDone {
				continue
			}
			res := j.spec.DegradedShard(shard, "coordinator draining")
			s.Metrics.ShardsDegraded.Add(1)
			j.degraded++
			s.resolveLocked(j, shard, &res)
		}
		if !j.folded {
			open = append(open, j)
		}
	}
	s.mu.Unlock()

	s.closeStreamListeners()
	streamsDone := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(streamsDone)
	}()

	for _, j := range open {
		select {
		case <-j.foldedCh:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case <-streamsDone:
		return nil
	case <-ctx.Done():
		s.closeStreamConns()
		<-streamsDone
		return ctx.Err()
	}
}

// ExpireLoop runs the lease janitor until ctx ends: even with every
// worker dead (nobody left to poll Lease and trigger the lazy scan),
// outstanding leases still expire and jobs still complete.
func (s *Server) ExpireLoop(ctx context.Context) {
	interval := s.cfg.LeaseTTL / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Expire()
		}
	}
}

// Stats composes the /statsz snapshot.
func (s *Server) Stats() StatsSnapshot {
	snap := s.Metrics.snapshot()
	s.mu.Lock()
	snap.Draining = s.draining
	snap.Jobs.LeasesOutstanding = int64(len(s.leases))
	for _, j := range s.jobs {
		if !j.folded {
			snap.Jobs.Open++
		}
	}
	s.mu.Unlock()
	return snap
}

// Handler is the coordinator's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, n, err := s.Submit(req.Spec)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "draining") {
				code = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), code)
			return
		}
		writeJSON(w, SubmitResponse{ID: id, Shards: n})
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		st, err := s.Status(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g := s.Lease(req.Worker)
		if g == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, g)
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.Heartbeat(req.LeaseID) {
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Result(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
