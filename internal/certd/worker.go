package certd

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"duopacity/internal/checkfarm"
)

// Worker is a pull-based shard computer: it polls the coordinator for
// leases, heartbeats while computing, and posts results (or errors —
// which the coordinator requeues). Workers hold no job state; killing
// one mid-shard costs at most that shard's lease TTL.
type Worker struct {
	Client *Client
	// Name identifies the worker in leases and degradation artifacts.
	Name string
	// Poll is the idle re-poll interval when the coordinator has no work
	// (default 100ms).
	Poll time.Duration
}

// Run pulls and computes shards until ctx ends or the coordinator
// becomes unreachable twice in a row (a drained coordinator answers
// polls with no work, which keeps the worker alive and idle).
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	consecutiveErrs := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grant, ok, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			consecutiveErrs++
			if consecutiveErrs >= 2 {
				return fmt.Errorf("certd worker %s: coordinator unreachable: %w", w.Name, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		consecutiveErrs = 0
		if !ok {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		w.runShard(ctx, grant)
	}
}

// runShard computes one leased shard with heartbeats at TTL/3 and panic
// recovery: a crashing shard reports an error result — the coordinator
// requeues or degrades it — instead of killing the worker loop.
func (w *Worker) runShard(ctx context.Context, g *LeaseGrant) {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	ttl := time.Duration(g.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if alive, err := w.Client.Heartbeat(hbCtx, g.LeaseID); err == nil && !alive {
					return // lease reclaimed; the result post will be a no-op or requeue
				}
			}
		}
	}()

	res, rerr := w.computeShard(ctx, g)
	stopHB()

	req := ResultRequest{JobID: g.JobID, Shard: g.Shard, LeaseID: g.LeaseID, Worker: w.Name}
	if rerr != nil {
		req.Err = rerr.Error()
	} else {
		req.Result = &res
	}
	// Best-effort delivery with one retry; past that the lease expiry
	// requeues the shard anyway.
	rctx, cancel := context.WithTimeout(context.Background(), ttl)
	defer cancel()
	if err := w.Client.Result(rctx, req); err != nil {
		_ = w.Client.Result(rctx, req)
	}
}

func (w *Worker) computeShard(ctx context.Context, g *LeaseGrant) (res checkfarm.ShardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return g.Spec.RunShard(ctx, g.Shard)
}
