package certd

import "sync/atomic"

// Metrics holds the server's monotonic counters. Everything is atomic —
// stream handlers and HTTP handlers bump them without taking the
// coordinator lock — and /statsz serves a consistent-enough snapshot
// (each counter is read atomically; cross-counter skew is fine for an
// ops surface).
type Metrics struct {
	// Stream-side counters.
	StreamsOpen     atomic.Int64 // currently connected
	StreamsTotal    atomic.Int64 // accepted since start
	StreamsRejected atomic.Int64 // refused at admission ("ERR busy")
	StreamEvents    atomic.Int64 // events appended to monitors
	StreamBad       atomic.Int64 // malformed or rejected input lines
	StreamDropped   atomic.Int64 // events dropped by lossy streams
	StreamStalls    atomic.Int64 // reads paused on a full queue (backpressure)
	AppendNanos     atomic.Int64 // cumulative monitor-append latency

	// Job-side counters.
	JobsSubmitted  atomic.Int64
	JobsDone       atomic.Int64
	JobsFailed     atomic.Int64
	LeasesGranted  atomic.Int64
	LeasesExpired  atomic.Int64
	ShardsDone     atomic.Int64
	ShardsRequeued atomic.Int64
	ShardsDegraded atomic.Int64
}

// StatsSnapshot is the /statsz payload: the counters plus the gauges
// only the coordinator state knows (open jobs, outstanding leases).
type StatsSnapshot struct {
	Streams struct {
		Open     int64 `json:"open"`
		Total    int64 `json:"total"`
		Rejected int64 `json:"rejected"`
		Events   int64 `json:"events"`
		Bad      int64 `json:"bad"`
		Dropped  int64 `json:"dropped"`
		Stalls   int64 `json:"stalls"`
		// AvgAppendNanos is the mean monitor-append latency over the
		// server's lifetime (0 before the first event).
		AvgAppendNanos int64 `json:"avg_append_nanos"`
	} `json:"streams"`
	Jobs struct {
		Submitted         int64 `json:"submitted"`
		Open              int64 `json:"open"`
		Done              int64 `json:"done"`
		Failed            int64 `json:"failed"`
		LeasesGranted     int64 `json:"leases_granted"`
		LeasesOutstanding int64 `json:"leases_outstanding"`
		LeasesExpired     int64 `json:"leases_expired"`
		ShardsDone        int64 `json:"shards_done"`
		ShardsRequeued    int64 `json:"shards_requeued"`
		ShardsDegraded    int64 `json:"shards_degraded"`
	} `json:"jobs"`
	Draining bool `json:"draining"`
}

// snapshot fills the counter half; the server adds its gauges.
func (m *Metrics) snapshot() StatsSnapshot {
	var s StatsSnapshot
	s.Streams.Open = m.StreamsOpen.Load()
	s.Streams.Total = m.StreamsTotal.Load()
	s.Streams.Rejected = m.StreamsRejected.Load()
	s.Streams.Events = m.StreamEvents.Load()
	s.Streams.Bad = m.StreamBad.Load()
	s.Streams.Dropped = m.StreamDropped.Load()
	s.Streams.Stalls = m.StreamStalls.Load()
	if ev := s.Streams.Events; ev > 0 {
		s.Streams.AvgAppendNanos = m.AppendNanos.Load() / ev
	}
	s.Jobs.Submitted = m.JobsSubmitted.Load()
	s.Jobs.Done = m.JobsDone.Load()
	s.Jobs.Failed = m.JobsFailed.Load()
	s.Jobs.LeasesGranted = m.LeasesGranted.Load()
	s.Jobs.LeasesExpired = m.LeasesExpired.Load()
	s.Jobs.ShardsDone = m.ShardsDone.Load()
	s.Jobs.ShardsRequeued = m.ShardsRequeued.Load()
	s.Jobs.ShardsDegraded = m.ShardsDegraded.Load()
	return s
}
