package certd

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// streamOpts is a parsed STREAM hello. Criteria names are ducheck's
// -criteria flag names (spec.ParseCriterion aliases); NewMonitor rejects
// the non-monitorable ones, so a STREAM hello asking for a batch-only
// baseline (strictser, ser) fails with the monitor's own explanation,
// which lists the monitorable set — du, tms2, rco, opacity, finalstate.
type streamOpts struct {
	criteria  []spec.Criterion
	retire    int
	nodeLimit int
	skipBad   bool
	strict    bool
	lossy     bool
	quiet     bool
}

func parseHello(line string) (streamOpts, error) {
	var o streamOpts
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "STREAM" {
		return o, fmt.Errorf("want: STREAM <criteria> [retire=N] [nodelimit=N] [skipbad|strict] [lossy] [quiet]")
	}
	for _, name := range strings.Split(fields[1], ",") {
		c, ok := spec.ParseCriterion(strings.TrimSpace(name))
		if !ok {
			return o, fmt.Errorf("unknown criterion %q", name)
		}
		o.criteria = append(o.criteria, c)
	}
	for _, f := range fields[2:] {
		switch {
		case f == "skipbad":
			o.skipBad = true
		case f == "strict":
			o.strict = true
		case f == "lossy":
			o.lossy = true
		case f == "quiet":
			o.quiet = true
		case strings.HasPrefix(f, "retire="):
			n, err := strconv.Atoi(f[len("retire="):])
			if err != nil || n < 0 {
				return o, fmt.Errorf("bad retire value %q", f)
			}
			o.retire = n
		case strings.HasPrefix(f, "nodelimit="):
			n, err := strconv.Atoi(f[len("nodelimit="):])
			if err != nil || n < 0 {
				return o, fmt.Errorf("bad nodelimit value %q", f)
			}
			o.nodeLimit = n
		default:
			return o, fmt.Errorf("unknown option %q", f)
		}
	}
	if o.skipBad && o.strict {
		return o, fmt.Errorf("skipbad and strict are mutually exclusive")
	}
	return o, nil
}

// ServeStreams accepts monitor-stream connections on ln until the
// listener closes (Drain closes it). Each connection is handled on its
// own goroutine; Drain waits for them.
func (s *Server) ServeStreams(ln net.Listener) error {
	s.streamMu.Lock()
	if s.draining {
		s.streamMu.Unlock()
		ln.Close()
		return fmt.Errorf("certd: coordinator is draining")
	}
	s.streamLns = append(s.streamLns, ln)
	s.streamMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil // listener closed (drain) — not an error
		}
		s.streams.Add(1)
		go func() {
			defer s.streams.Done()
			s.handleStream(conn)
		}()
	}
}

func (s *Server) closeStreamListeners() {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for _, ln := range s.streamLns {
		_ = ln.Close()
	}
	s.streamLns = nil
}

func (s *Server) closeStreamConns() {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for c := range s.conns {
		_ = c.Close()
	}
}

func (s *Server) trackConn(c net.Conn) func() {
	s.streamMu.Lock()
	s.conns[c] = struct{}{}
	s.streamMu.Unlock()
	return func() {
		s.streamMu.Lock()
		delete(s.conns, c)
		s.streamMu.Unlock()
	}
}

// handleStream runs one monitored stream: the network generalization of
// ducheck's runFollow, with the same three bad-input policies and the
// same per-event rendering, plus the queue/backpressure machinery a
// network producer needs.
func (s *Server) handleStream(conn net.Conn) {
	defer conn.Close()
	defer s.trackConn(conn)()
	// The out-buffer must exceed the 32KB flush threshold below, or the
	// explicit flush (with its client-gone check) could never fire —
	// bufio would auto-flush first and swallow the error.
	out := bufio.NewWriterSize(conn, 64*1024)
	defer out.Flush()

	// Admission control: past MaxStreams the hello is refused outright —
	// the connection-level analog of HTTP 429. The producer sees an
	// explicit ERR, never a silently-slow server.
	if int(s.Metrics.StreamsOpen.Add(1)) > s.cfg.MaxStreams {
		s.Metrics.StreamsOpen.Add(-1)
		s.Metrics.StreamsRejected.Add(1)
		fmt.Fprintln(out, "ERR busy")
		return
	}
	defer s.Metrics.StreamsOpen.Add(-1)
	streamID := fmt.Sprintf("s%d", s.Metrics.StreamsTotal.Add(1))

	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !in.Scan() {
		if err := in.Err(); err != nil {
			fmt.Fprintf(out, "ERR read: %v\n", err)
		}
		return
	}
	o, err := parseHello(in.Text())
	if err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	monitors := make([]*spec.Monitor, len(o.criteria))
	for i, c := range o.criteria {
		opts := []spec.Option{spec.WithNodeLimit(o.nodeLimit)}
		if o.retire > 0 {
			opts = append(opts, spec.WithRetirement(o.retire))
		}
		m, merr := spec.NewMonitor(c, opts...)
		if merr != nil {
			fmt.Fprintf(out, "ERR %v\n", merr)
			return
		}
		monitors[i] = m
	}
	fmt.Fprintf(out, "OK %s\n", streamID)
	out.Flush()

	// The bounded input queue: the reader goroutine feeds it, this
	// goroutine drains it through the monitors. A full queue either
	// pauses the reader — TCP flow control then pushes back on the
	// producer, counted as a stall — or, on lossy streams, drops the
	// line, counted and reported. Memory per stream is queue depth plus
	// the monitors' retirement windows, independent of stream length.
	type inLine struct {
		no   int
		text string
	}
	queue := make(chan inLine, s.cfg.StreamQueue)
	consumerGone := make(chan struct{})
	defer close(consumerGone) // any early return unblocks a stalled reader
	var (
		dropped int64
		readErr error // written before close(queue), read after the drain loop
	)
	go func() {
		defer close(queue)
		lineNo := 0
		for in.Scan() {
			lineNo++
			text := in.Text()
			if text == "END" {
				return
			}
			l := inLine{no: lineNo, text: text}
			select {
			case queue <- l:
			default:
				if o.lossy {
					dropped++
					s.Metrics.StreamDropped.Add(1)
					continue
				}
				s.Metrics.StreamStalls.Add(1)
				select {
				case queue <- l:
				case <-consumerGone:
					return
				}
			}
		}
		readErr = in.Err()
	}()

	const maxBadDetail = 10
	type badInput struct {
		no   int
		text string
		err  error
	}
	var (
		badCount  int
		badDetail []badInput
		strictErr error
		idx       int
	)
	noteBad := func(no int, text string, err error) bool {
		s.Metrics.StreamBad.Add(1)
		badCount++
		switch {
		case o.strict:
			strictErr = fmt.Errorf("line %d: %w", no, err)
			return true
		case o.skipBad:
			if len(badDetail) < maxBadDetail {
				badDetail = append(badDetail, badInput{no: no, text: text, err: err})
			}
		default:
			fmt.Fprintf(out, "BAD %d %v\n", no, err)
		}
		return false
	}
drain:
	for l := range queue {
		evs, perr := histio.ParseEvents(l.text)
		if perr != nil {
			if noteBad(l.no, l.text, perr) {
				break
			}
			continue
		}
		for _, e := range evs {
			if s.cfg.SlowAppend > 0 {
				time.Sleep(s.cfg.SlowAppend)
			}
			var verdicts []spec.Verdict
			rejected := false
			start := time.Now()
			for _, m := range monitors {
				v, aerr := m.Append(e)
				if aerr != nil {
					rejected = true
					if noteBad(l.no, l.text, aerr) {
						break drain
					}
					break
				}
				verdicts = append(verdicts, v)
			}
			if rejected {
				break
			}
			s.Metrics.AppendNanos.Add(time.Since(start).Nanoseconds())
			s.Metrics.StreamEvents.Add(1)
			if !o.quiet {
				fmt.Fprintf(out, "%4d  %-28v", idx, e)
				if e.Kind == history.Res {
					for i, v := range verdicts {
						status := "ok"
						switch {
						case v.Undecided:
							status = "undecided"
						case !v.OK:
							status = "VIOLATED"
						}
						fmt.Fprintf(out, "  %s:%s", o.criteria[i], status)
					}
				}
				fmt.Fprintln(out)
			}
			idx++
		}
		if out.Buffered() > 32*1024 {
			if out.Flush() != nil {
				return // client gone
			}
		}
	}
	if strictErr != nil {
		// Fail the stream the way -strict fails the CLI: no final
		// verdicts. The deferred close(consumerGone) unblocks the reader.
		fmt.Fprintf(out, "ERR %v\n", strictErr)
		return
	}
	if readErr != nil {
		// The input died mid-stream (read error, or a line past the
		// scanner's 1MB limit): fail explicitly rather than emitting a
		// DONE that pretends the stream completed.
		fmt.Fprintf(out, "ERR read: %v\n", readErr)
		return
	}

	if o.skipBad && badCount > 0 {
		fmt.Fprintf(out, "QUARANTINED %d bad input line(s):\n", badCount)
		for _, b := range badDetail {
			fmt.Fprintf(out, "  line %d: %v: %q\n", b.no, b.err, b.text)
		}
		if badCount > len(badDetail) {
			fmt.Fprintf(out, "  ... and %d more\n", badCount-len(badDetail))
		}
	}
	if o.skipBad {
		fmt.Fprintf(out, "follow: events=%d bad=%d\n", idx, badCount)
	}
	violations := 0
	for i, m := range monitors {
		v := m.Verdict()
		fmt.Fprintln(out, v)
		if o.retire > 0 {
			fmt.Fprintf(out, "%v: %d events, %d transactions retired, %d live\n",
				o.criteria[i], m.Len(), m.Retired(), m.LiveTxns())
		}
		if !v.OK && !v.Undecided {
			violations++
		}
	}
	fmt.Fprintf(out, "DONE events=%d bad=%d dropped=%d violations=%d\n", idx, badCount, dropped, violations)
}
