package certd

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// LoadTestConfig parameterizes the streaming load harness: Streams
// concurrent connections each feed Txns synthetic transactions (the CI
// retirement-smoke shape: one write, one commit — four events per
// transaction) through a monitored du-opacity stream.
type LoadTestConfig struct {
	// Addr is the stream listener address ("host:port").
	Addr string
	// Streams is the number of concurrent connections (default 8).
	Streams int
	// Txns per stream (default 250).
	Txns int
	// Retire is the monitor retirement window (default 8), bounding
	// per-stream memory regardless of Txns.
	Retire int
}

func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Streams <= 0 {
		c.Streams = 8
	}
	if c.Txns <= 0 {
		c.Txns = 250
	}
	if c.Retire <= 0 {
		c.Retire = 8
	}
	return c
}

// LoadTestReport aggregates a load-test run. EventsPerSec is the
// headline number (total monitored events over wall-clock time across
// all streams).
type LoadTestReport struct {
	Streams      int     `json:"streams"`
	TxnsPerConn  int     `json:"txns_per_conn"`
	Events       int64   `json:"events"`
	Violations   int64   `json:"violations"`
	Bad          int64   `json:"bad"`
	Dropped      int64   `json:"dropped"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// LoadTest drives cfg.Streams concurrent monitored streams against a
// running stream listener and reports aggregate throughput. Every stream
// uses quiet mode (no per-event echo — the monitored-append path is what
// is being measured) and the default blocking backpressure, so every
// sent event is monitored.
func LoadTest(ctx context.Context, cfg LoadTestConfig) (*LoadTestReport, error) {
	cfg = cfg.withDefaults()
	rep := &LoadTestReport{Streams: cfg.Streams, TxnsPerConn: cfg.Txns}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < cfg.Streams; i++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			events, violations, bad, dropped, err := runLoadStream(ctx, cfg, conn)
			mu.Lock()
			defer mu.Unlock()
			rep.Events += events
			rep.Violations += violations
			rep.Bad += bad
			rep.Dropped += dropped
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("stream %d: %w", conn, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	rep.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		rep.EventsPerSec = float64(rep.Events) / elapsed.Seconds()
	}
	return rep, nil
}

// runLoadStream feeds one connection's worth of synthetic transactions
// and parses the terminal DONE line.
func runLoadStream(ctx context.Context, cfg LoadTestConfig, conn int) (events, violations, bad, dropped int64, err error) {
	d := net.Dialer{}
	c, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer c.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.SetDeadline(deadline)
	}
	w := bufio.NewWriter(c)
	r := bufio.NewScanner(c)
	fmt.Fprintf(w, "STREAM du retire=%d quiet\n", cfg.Retire)
	if err := w.Flush(); err != nil {
		return 0, 0, 0, 0, err
	}
	if !r.Scan() {
		return 0, 0, 0, 0, fmt.Errorf("no hello response: %v", r.Err())
	}
	if resp := r.Text(); !strings.HasPrefix(resp, "OK ") {
		return 0, 0, 0, 0, fmt.Errorf("hello refused: %s", resp)
	}
	for t := 1; t <= cfg.Txns; t++ {
		// Distinct value per (conn, txn) keeps the read-write semantics
		// honest if a workload variant adds reads later.
		fmt.Fprintf(w, "write %d X %d\ncommit %d\n", t, conn*1_000_000+t, t)
	}
	fmt.Fprintln(w, "END")
	if err := w.Flush(); err != nil {
		return 0, 0, 0, 0, err
	}
	for r.Scan() {
		line := r.Text()
		if !strings.HasPrefix(line, "DONE ") {
			continue // final verdict lines
		}
		for _, f := range strings.Fields(line[len("DONE "):]) {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				continue
			}
			var n int64
			fmt.Sscanf(v, "%d", &n)
			switch k {
			case "events":
				events = n
			case "violations":
				violations = n
			case "bad":
				bad = n
			case "dropped":
				dropped = n
			}
		}
		return events, violations, bad, dropped, nil
	}
	return 0, 0, 0, 0, fmt.Errorf("stream ended without DONE: %v", r.Err())
}
