package certd

import (
	"context"
	"testing"
	"time"
)

// TestLoadTestSmoke: a small self-contained load run monitors every
// event it sends, with no violations, drops, or bad input.
func TestLoadTestSmoke(t *testing.T) {
	s := NewServer(Config{})
	addr := startStreams(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := LoadTest(ctx, LoadTestConfig{Addr: addr, Streams: 8, Txns: 50, Retire: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8 * 50 * 4); rep.Events != want {
		t.Fatalf("monitored %d events, want %d (report %+v)", rep.Events, want, rep)
	}
	if rep.Violations != 0 || rep.Bad != 0 || rep.Dropped != 0 {
		t.Fatalf("clean load run was not clean: %+v", rep)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", rep)
	}
}

// TestLoadTestHundredStreams is the acceptance-scale run: 100 concurrent
// monitored streams, every event monitored under bounded per-stream
// memory (retirement window + fixed queue), with the stream gauge back
// to zero afterwards.
func TestLoadTestHundredStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("100-stream load run is not -short")
	}
	s := NewServer(Config{})
	addr := startStreams(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := LoadTest(ctx, LoadTestConfig{Addr: addr, Streams: 100, Txns: 50, Retire: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(100 * 50 * 4); rep.Events != want {
		t.Fatalf("monitored %d events, want %d", rep.Events, want)
	}
	if rep.Violations != 0 || rep.Bad != 0 || rep.Dropped != 0 {
		t.Fatalf("clean load run was not clean: %+v", rep)
	}
	snap := s.Stats()
	if snap.Streams.Open != 0 {
		t.Fatalf("streams still open after load run: %+v", snap.Streams)
	}
	if snap.Streams.Total != 100 || snap.Streams.Events != rep.Events {
		t.Fatalf("statsz disagrees with the report: %+v vs %+v", snap.Streams, rep)
	}
	t.Logf("100 streams: %.0f events/sec (avg append %dns)", rep.EventsPerSec, snap.Streams.AvgAppendNanos)
}
