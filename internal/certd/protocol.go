// Package certd turns the in-process certification farm (package
// checkfarm) into a service: a coordinator slices farm jobs — episode
// certifications, differential soak cells, exhaustive plan explorations,
// history batches — into the shards of checkfarm.JobSpec and hands them
// to pull-based workers over a lease/heartbeat protocol, folding the
// ordered results with checkfarm.FoldJob so a distributed run's report
// is byte-identical to the in-process farm's. A second, line-oriented
// listener generalizes `ducheck -follow` to the network: each connection
// feeds a spec.Monitor incrementally and gets per-event verdicts back,
// with bounded per-stream queues and explicit backpressure.
//
// The coordinator never trusts a worker to stay alive: every grant
// carries a lease with a TTL, heartbeats extend it, and an expired lease
// requeues the shard. A shard that burns through its attempts degrades
// into the explicit artifacts of checkfarm.(JobSpec).DegradedShard — the
// PR 7 contract that a dead worker costs coverage, visibly, never a hung
// or silently-wrong run.
//
// # Job protocol (HTTP/JSON)
//
//	POST /v1/jobs       SubmitRequest  -> SubmitResponse
//	POST /v1/lease      LeaseRequest   -> LeaseGrant, or 204 (no work)
//	POST /v1/heartbeat  HeartbeatRequest -> 200, or 410 (lease gone)
//	POST /v1/result     ResultRequest  -> 200 (idempotent)
//	GET  /v1/jobs/{id}  -> JobStatus
//	GET  /healthz       -> "ok" | "draining"
//	GET  /statsz        -> StatsSnapshot
//
// # Stream protocol (line-oriented TCP)
//
// The client opens with a hello line:
//
//	STREAM <criteria-csv> [retire=N] [nodelimit=N] [skipbad|strict] [lossy] [quiet]
//
// and the server answers "OK <stream-id>" or "ERR <reason>" (admission
// control: past MaxStreams every hello is refused with "ERR busy" — the
// connection-level analog of HTTP 429 — and counted in /statsz). The
// client then sends histio event lines; the server answers each accepted
// event with the `ducheck -follow` rendering (suppressed by quiet), each
// rejected line with "BAD <line> <reason>" (silent under skipbad; fatal
// "ERR line <n>: <reason>" under strict). "END" or EOF finishes the
// stream: the server emits the final per-criterion verdict lines, the
// retirement summary when retire is set, the skipbad ledger when skipbad
// is set, and a terminal
//
//	DONE events=<n> bad=<n> dropped=<n> violations=<n>
//
// line. Per-stream memory is bounded by the monitor's retirement window
// plus a fixed-depth input queue; when the queue fills, the server
// either stops reading (default — TCP flow control pushes back on the
// producer, counted as a stall) or drops the overflow (lossy, counted
// and reported in DONE and /statsz). It never buffers without bound.
package certd

import (
	"duopacity/internal/checkfarm"
)

// SubmitRequest asks the coordinator to run a farm job.
type SubmitRequest struct {
	Spec checkfarm.JobSpec `json:"spec"`
}

// SubmitResponse acknowledges a submitted job.
type SubmitResponse struct {
	ID     string `json:"id"`
	Shards int    `json:"shards"`
}

// LeaseRequest is a worker pulling for a shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant hands one shard to a worker under a lease. The spec arrives
// normalized: the worker computes Spec.RunShard(ctx, Shard) and posts
// the result back under the lease.
type LeaseGrant struct {
	JobID     string            `json:"job_id"`
	Shard     int               `json:"shard"`
	LeaseID   string            `json:"lease_id"`
	TTLMillis int64             `json:"ttl_millis"`
	Spec      checkfarm.JobSpec `json:"spec"`
}

// HeartbeatRequest extends a lease. A 410 response means the lease
// already expired (the shard is requeued or degraded); the worker should
// abandon the shard.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// ResultRequest delivers a shard outcome. Err reports a failed
// computation (the shard is requeued, or degraded past its attempts);
// otherwise Result carries the computed shard. Delivery is idempotent:
// posting a result for an already-folded shard is an acknowledged no-op,
// so retried or duplicated deliveries are harmless.
type ResultRequest struct {
	JobID   string                 `json:"job_id"`
	Shard   int                    `json:"shard"`
	LeaseID string                 `json:"lease_id"`
	Worker  string                 `json:"worker,omitempty"`
	Result  *checkfarm.ShardResult `json:"result,omitempty"`
	Err     string                 `json:"err,omitempty"`
}

// Job states reported by JobStatus.
const (
	JobRunning = "running" // shards outstanding
	JobFolding = "folding" // every shard delivered; aggregation in progress
	JobDone    = "done"    // report ready
	JobFailed  = "failed"  // the fold itself errored (malformed results)
)

// JobStatus is the coordinator's view of one job. Formatted is the
// report rendered exactly as the in-process farm CLIs render it — the
// byte-identity contract travels as text (structured explore and soak
// reports hold process-local types and stay on the coordinator).
type JobStatus struct {
	ID        string              `json:"id"`
	Kind      checkfarm.ShardKind `json:"kind"`
	State     string              `json:"state"`
	Shards    int                 `json:"shards"`
	Done      int                 `json:"done"`
	Leased    int                 `json:"leased"`
	Degraded  int                 `json:"degraded"`
	Formatted string              `json:"formatted,omitempty"`
	Err       string              `json:"err,omitempty"`
}
