package certd

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"duopacity/internal/checkfarm"
	"duopacity/internal/spec"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func checkJobSpec(histories ...string) checkfarm.JobSpec {
	return checkfarm.JobSpec{Kind: checkfarm.KindCheck, Check: &checkfarm.CheckJob{
		Histories: histories,
		Criteria:  []spec.Criterion{spec.DUOpacity},
	}}
}

// waitReport fetches the folded report with a hard timeout: a hung
// coordinator is itself a failure here.
func waitReport(t *testing.T, s *Server, id string) (*checkfarm.JobReport, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, text, err := s.Report(ctx, id)
	if err != nil {
		t.Fatalf("Report(%s): %v", id, err)
	}
	return rep, text
}

// TestLeaseExpiryRequeues pins the worker-dies-mid-shard path: the lease
// expires, the shard goes back in the queue, and a second worker
// completes the job with no degradation.
func TestLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now})
	id, n, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil || n != 1 {
		t.Fatalf("Submit: %v (n=%d)", err, n)
	}

	g1 := s.Lease("w1")
	if g1 == nil || g1.Shard != 0 {
		t.Fatalf("first lease: %+v", g1)
	}
	// w1 dies: no heartbeat, no result. Before expiry no other worker
	// can steal the shard.
	if g := s.Lease("w2"); g != nil {
		t.Fatalf("shard double-leased before expiry: %+v", g)
	}
	clk.Advance(1500 * time.Millisecond)

	g2 := s.Lease("w2")
	if g2 == nil || g2.Shard != 0 || g2.LeaseID == g1.LeaseID {
		t.Fatalf("expiry did not requeue the shard: %+v", g2)
	}
	if got := s.Metrics.LeasesExpired.Load(); got != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", got)
	}
	if got := s.Metrics.ShardsRequeued.Load(); got != 1 {
		t.Fatalf("ShardsRequeued = %d, want 1", got)
	}
	// The dead worker's heartbeat (if it wakes up late) is refused.
	if s.Heartbeat(g1.LeaseID) {
		t.Fatalf("expired lease accepted a heartbeat")
	}

	res, err := g2.Spec.RunShard(context.Background(), g2.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g2.LeaseID, Worker: "w2", Result: &res}); err != nil {
		t.Fatal(err)
	}
	rep, text := waitReport(t, s, id)
	if rep.Degraded != 0 {
		t.Fatalf("requeued-and-completed shard counted degraded:\n%s", text)
	}
	if !rep.Check[0][0].OK {
		t.Fatalf("verdict wrong after requeue: %+v", rep.Check[0][0])
	}
}

// TestLeaseExhaustionDegrades: a shard whose every grant dies becomes an
// explicit degraded artifact and the job still completes — never hangs.
func TestLeaseExhaustionDegrades(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now, MaxShardAttempts: 3})
	id, _, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		if g := s.Lease("doomed"); g == nil {
			t.Fatalf("attempt %d: no grant", attempt)
		}
		clk.Advance(2 * time.Second)
		s.Expire()
	}
	rep, text := waitReport(t, s, id)
	if rep.Degraded != 1 {
		t.Fatalf("degraded count %d, want 1\n%s", rep.Degraded, text)
	}
	v := rep.Check[0][0]
	if !v.Undecided || !strings.Contains(v.Reason, "degraded") || !strings.Contains(v.Reason, "lease expired") {
		t.Fatalf("degraded artifact wrong: %+v", v)
	}
	if !strings.Contains(text, "degraded") {
		t.Fatalf("formatted report hides the degradation:\n%s", text)
	}
	if g := s.Lease("late"); g != nil {
		t.Fatalf("degraded shard re-leased: %+v", g)
	}
	st, err := s.Status(id)
	if err != nil || st.State != JobDone || st.Degraded != 1 {
		t.Fatalf("status: %+v, %v", st, err)
	}
}

// TestDuplicateResultDelivery: redelivered and stale results are
// acknowledged no-ops; the fold sees each shard exactly once.
func TestDuplicateResultDelivery(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now})
	id, _, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	g1 := s.Lease("w1")
	res, err := g1.Spec.RunShard(context.Background(), g1.Shard)
	if err != nil {
		t.Fatal(err)
	}
	req := ResultRequest{JobID: id, Shard: 0, LeaseID: g1.LeaseID, Worker: "w1", Result: &res}
	for i := 0; i < 3; i++ {
		if err := s.Result(req); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	if got := s.Metrics.ShardsDone.Load(); got != 1 {
		t.Fatalf("ShardsDone = %d after duplicate deliveries, want 1", got)
	}
	rep, _ := waitReport(t, s, id)
	if rep.Degraded != 0 || !rep.Check[0][0].OK {
		t.Fatalf("report wrong after duplicates: %+v", rep)
	}
}

// TestStaleResultAfterRequeue: a presumed-dead worker delivering after
// its lease expired and the shard was re-leased still resolves the shard
// (the result is valid work); the second worker's later delivery is the
// duplicate no-op.
func TestStaleResultAfterRequeue(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now})
	id, _, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	g1 := s.Lease("slow")
	clk.Advance(2 * time.Second)
	g2 := s.Lease("fast") // triggers expiry, re-leases shard 0
	if g2 == nil || g2.Shard != 0 {
		t.Fatalf("requeue grant: %+v", g2)
	}
	res, err := g1.Spec.RunShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The slow worker's stale delivery arrives first.
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g1.LeaseID, Worker: "slow", Result: &res}); err != nil {
		t.Fatal(err)
	}
	// The fast worker finishes and delivers into a done shard: no-op.
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g2.LeaseID, Worker: "fast", Result: &res}); err != nil {
		t.Fatal(err)
	}
	rep, _ := waitReport(t, s, id)
	if rep.Degraded != 0 || s.Metrics.ShardsDone.Load() != 1 {
		t.Fatalf("stale+duplicate handling wrong: degraded=%d done=%d", rep.Degraded, s.Metrics.ShardsDone.Load())
	}
	st, _ := s.Status(id)
	if st.Leased != 0 {
		t.Fatalf("leased gauge leaked: %+v", st)
	}
}

// TestStaleResultWhileRequeued: the slow worker's result arrives while
// its expired shard is still sitting in the pending queue (not yet
// re-leased). The result resolves the shard AND removes it from the
// queue — a later Lease must never grant an already-done shard (which
// would double-resolve it and fail the fold on a multi-shard job).
func TestStaleResultWhileRequeued(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now})
	id, n, err := s.Submit(checkJobSpec(
		"write 1 X 1\ncommit 1\n",
		"write 1 Y 2\ncommit 1\n",
	))
	if err != nil || n != 2 {
		t.Fatalf("Submit: %v (n=%d)", err, n)
	}
	g1 := s.Lease("slow")
	if g1 == nil || g1.Shard != 0 {
		t.Fatalf("first lease: %+v", g1)
	}
	clk.Advance(2 * time.Second)
	s.Expire() // shard 0 back in the queue behind shard 1; nobody re-leases it
	res, err := g1.Spec.RunShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g1.LeaseID, Worker: "slow", Result: &res}); err != nil {
		t.Fatal(err)
	}
	// Only shard 1 is grantable now; shard 0 is done and must be gone
	// from the queue.
	gA := s.Lease("w2")
	if gA == nil || gA.Shard != 1 {
		t.Fatalf("expected shard 1 grant, got %+v", gA)
	}
	if gB := s.Lease("w3"); gB != nil {
		t.Fatalf("already-done shard granted again: %+v", gB)
	}
	res1, err := gA.Spec.RunShard(context.Background(), gA.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Result(ResultRequest{JobID: id, Shard: 1, LeaseID: gA.LeaseID, Worker: "w2", Result: &res1}); err != nil {
		t.Fatal(err)
	}
	rep, text := waitReport(t, s, id)
	if rep.Degraded != 0 {
		t.Fatalf("stale-while-pending resolve degraded the job:\n%s", text)
	}
	if got := s.Metrics.ShardsDone.Load(); got != 2 {
		t.Fatalf("ShardsDone = %d, want 2", got)
	}
	st, _ := s.Status(id)
	if st.Leased != 0 || st.Done != 2 {
		t.Fatalf("gauges skewed after stale resolve: %+v", st)
	}
}

// TestStaleErrorAfterRequeue: an Err delivery from a lease that no
// longer owns the shard (it expired and the shard was requeued) is a
// no-op — no duplicate pending entry, so the shard can never be leased
// to two workers at once.
func TestStaleErrorAfterRequeue(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now})
	id, _, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	g1 := s.Lease("slow")
	clk.Advance(2 * time.Second)
	s.Expire() // shard 0 requeued
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g1.LeaseID, Worker: "slow", Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics.ShardsRequeued.Load(); got != 1 {
		t.Fatalf("stale Err requeued again: ShardsRequeued = %d, want 1", got)
	}
	g2 := s.Lease("w2")
	if g2 == nil || g2.Shard != 0 {
		t.Fatalf("requeued shard not grantable: %+v", g2)
	}
	if g3 := s.Lease("w3"); g3 != nil {
		t.Fatalf("shard leased twice concurrently: %+v", g3)
	}
	res, err := g2.Spec.RunShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g2.LeaseID, Worker: "w2", Result: &res}); err != nil {
		t.Fatal(err)
	}
	rep, _ := waitReport(t, s, id)
	if rep.Degraded != 0 || s.Metrics.ShardsDone.Load() != 1 {
		t.Fatalf("stale Err handling wrong: degraded=%d done=%d", rep.Degraded, s.Metrics.ShardsDone.Load())
	}
	st, _ := s.Status(id)
	if st.Leased != 0 {
		t.Fatalf("leased gauge leaked: %+v", st)
	}
}

// TestErrorResultRequeues: a worker reporting a failed computation sends
// the shard back to the queue with the attempt burned.
func TestErrorResultRequeues(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Second, Clock: clk.Now, MaxShardAttempts: 2})
	id, _, err := s.Submit(checkJobSpec("write 1 X 1\ncommit 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	g := s.Lease("w1")
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g.LeaseID, Worker: "w1", Err: "shard panicked: boom"}); err != nil {
		t.Fatal(err)
	}
	g2 := s.Lease("w1")
	if g2 == nil {
		t.Fatalf("errored shard was not requeued")
	}
	// Second failure exhausts the attempts -> degraded, job completes.
	if err := s.Result(ResultRequest{JobID: id, Shard: 0, LeaseID: g2.LeaseID, Worker: "w1", Err: "shard panicked: boom"}); err != nil {
		t.Fatal(err)
	}
	rep, text := waitReport(t, s, id)
	if rep.Degraded != 1 || !strings.Contains(text, "degraded") {
		t.Fatalf("exhausted error path not degraded:\n%s", text)
	}
}

// TestDrainDegradesOutstanding: draining with shards pending and leased
// completes every job with explicit degradation artifacts — the
// coordinator never leaves a submitter hanging.
func TestDrainDegradesOutstanding(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(Config{LeaseTTL: time.Minute, Clock: clk.Now})
	id, n, err := s.Submit(checkJobSpec(
		"write 1 X 1\ncommit 1\n",
		"write 1 Y 2\ncommit 1\n",
		"write 2 Z 3\ncommit 2\n",
	))
	if err != nil || n != 3 {
		t.Fatalf("Submit: %v (n=%d)", err, n)
	}
	// Shard 0 completes normally; shard 1 is leased to a worker that will
	// never return; shard 2 stays pending.
	g0 := s.Lease("w1")
	res, err := g0.Spec.RunShard(context.Background(), g0.Shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Result(ResultRequest{JobID: id, Shard: g0.Shard, LeaseID: g0.LeaseID, Result: &res}); err != nil {
		t.Fatal(err)
	}
	_ = s.Lease("vanished")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Degraded != 2 {
		t.Fatalf("drained job status: %+v", st)
	}
	if !strings.Contains(st.Formatted, "degraded") {
		t.Fatalf("drained report hides degradation:\n%s", st.Formatted)
	}
	// Draining coordinator refuses new work.
	if _, _, err := s.Submit(checkJobSpec("commit 1\n")); err == nil {
		t.Fatalf("draining coordinator accepted a job")
	}
	if g := s.Lease("w9"); g != nil {
		t.Fatalf("draining coordinator granted a lease: %+v", g)
	}
}
