package litmus

import (
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// TestRegistryVerdicts is the figure-reproduction test: every litmus case
// must receive exactly the verdicts the paper (or the registry annotation)
// claims, under every criterion.
func TestRegistryVerdicts(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for crit, want := range c.Expect {
				v := spec.Check(c.H, crit)
				if v.Undecided {
					t.Fatalf("%s: undecided: %s", crit, v.Reason)
				}
				if v.OK != want {
					t.Errorf("%s: got %v, want %v (reason: %s)", crit, v.OK, want, v.Reason)
				}
				if v.OK && crit == spec.DUOpacity {
					if err := v.Serialization.Legal(); err != nil {
						t.Errorf("du witness not legal: %v", err)
					}
					if err := v.Serialization.MatchesCompletionOf(c.H); err != nil {
						t.Errorf("du witness not a completion: %v", err)
					}
				}
			}
		})
	}
}

// TestFigure1Serialization verifies the paper's concrete serialization
// T2, T3, T1, T4 is among the du-opaque serializations of Figure 1.
func TestFigure1Serialization(t *testing.T) {
	h := Figure1()
	want := []history.TxnID{2, 3, 1, 4}
	found := false
	spec.AllDUSerializations(h, 0, func(s *history.Seq) bool {
		ord := s.Order()
		match := len(ord) == len(want)
		for i := range want {
			if match && ord[i] != want[i] {
				match = false
			}
		}
		if match {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("the paper's serialization T2,T3,T1,T4 was not found")
	}
}

// TestFigure2PrefixesDUOpaqueButLimitNot reproduces Proposition 1: every
// finite member of the family is du-opaque, but in every serialization of
// the j-th member all readers of 0 precede T1 (and T2 follows T1), so T1's
// serialization index grows without bound — the limit has no serialization.
func TestFigure2PrefixesDUOpaqueButLimitNot(t *testing.T) {
	for j := 2; j <= 7; j++ {
		h := Figure2Family(j)
		v := spec.CheckDUOpacity(h)
		if !v.OK {
			t.Fatalf("j=%d: member not du-opaque: %s", j, v.Reason)
		}
		// Every event-prefix is du-opaque too (Corollary 2 on this family).
		for i := 0; i <= h.Len(); i++ {
			if pv := spec.CheckDUOpacity(h.Prefix(i)); !pv.OK {
				t.Fatalf("j=%d: prefix %d not du-opaque: %s", j, i, pv.Reason)
			}
		}
		// In every serialization, T1 sits after all readers of 0 and
		// before T2: position(T1) = j-2, position(T2) = j-1.
		count := spec.AllDUSerializations(h, 0, func(s *history.Seq) bool {
			n := len(s.Txns)
			if s.Position(1) != n-2 || s.Position(2) != n-1 {
				t.Errorf("j=%d: serialization %s does not end with T1,T2", j, s)
			}
			if !s.Txns[n-2].Committed() {
				t.Errorf("j=%d: T1 must commit in %s", j, s)
			}
			return true
		})
		if count == 0 {
			t.Fatalf("j=%d: no serializations enumerated", j)
		}
	}
}

// TestFigure3FinalStateNotPrefixClosed reproduces Figure 3.
func TestFigure3FinalStateNotPrefixClosed(t *testing.T) {
	h := Figure3()
	if v := spec.CheckFinalStateOpacity(h); !v.OK {
		t.Fatalf("H should be final-state opaque: %s", v.Reason)
	}
	hp := h.Prefix(Figure3PrefixLen)
	if v := spec.CheckFinalStateOpacity(hp); v.OK {
		t.Fatalf("prefix H' should not be final-state opaque (got witness %s)", v.Serialization)
	}
}

// TestFigure4OpaqueNotDUOpaque reproduces Proposition 2.
func TestFigure4OpaqueNotDUOpaque(t *testing.T) {
	h := Figure4()
	if v := spec.CheckOpacity(h); !v.OK {
		t.Fatalf("Figure 4 should be opaque: %s", v.Reason)
	}
	v := spec.CheckDUOpacity(h)
	if v.OK {
		t.Fatal("Figure 4 should not be du-opaque")
	}
	// The paper's diagnosis: T2 read 1 but no writer of 1 had invoked tryC.
	if v.Reason == "" {
		t.Error("expected a deferred-update refutation reason")
	}
}

// TestFigure4FinalSerialization verifies the paper's claim that the
// final-state serializations of Figure 4 place T3 before T2 with T3
// committed (seq T1,T3,T2 up to the position of the aborted T1).
func TestFigure4FinalSerialization(t *testing.T) {
	v := spec.CheckFinalStateOpacity(Figure4())
	if !v.OK {
		t.Fatalf("final-state opacity rejected: %s", v.Reason)
	}
	s := v.Serialization
	if s.Position(3) > s.Position(2) {
		t.Errorf("T3 must precede T2 in %s", s)
	}
	for _, st := range s.Txns {
		switch st.ID {
		case 1:
			if st.Committed() {
				t.Error("T1 must abort")
			}
		case 3:
			if !st.Committed() {
				t.Error("T3 must commit")
			}
		}
	}
}

// TestFigure2FamilyDegenerate checks the clamped minimum of the family.
func TestFigure2FamilyDegenerate(t *testing.T) {
	h := Figure2Family(0)
	if h.NumTxns() != 2 {
		t.Fatalf("clamped family should have T1 and T2, got %d txns", h.NumTxns())
	}
	if !spec.CheckDUOpacity(h).OK {
		t.Fatal("degenerate family member should be du-opaque")
	}
}

func TestByName(t *testing.T) {
	if c := ByName("figure-4"); c == nil || c.Figure != 4 {
		t.Fatal("ByName(figure-4) failed")
	}
	if ByName("no-such-case") != nil {
		t.Fatal("ByName should return nil for unknown names")
	}
}

// TestCasesAreWellFormed ensures every litmus history is well-formed and
// every expected map covers all criteria.
func TestCasesAreWellFormed(t *testing.T) {
	names := make(map[string]bool)
	for _, c := range Cases() {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if c.H == nil || c.H.Len() == 0 {
			t.Errorf("%s: empty history", c.Name)
		}
		for _, crit := range spec.AllCriteria() {
			if _, ok := c.Expect[crit]; !ok {
				t.Errorf("%s: missing expectation for %s", c.Name, crit)
			}
		}
	}
}
