// Package litmus encodes the example histories of Attiya, Hans, Kuznetsov
// and Ravi, "Safety of Deferred Update in Transactional Memory" (ICDCS
// 2013) — Figures 1 through 6 — together with auxiliary histories from the
// prose, each annotated with its expected verdict under every implemented
// criterion. The registry drives the figure-reproduction tests, the
// cmd/litmus verdict matrix, and the per-figure benchmarks.
package litmus

import (
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// Case is a named litmus history with expected verdicts.
type Case struct {
	Name string
	// Figure is the paper figure number reproduced by the case, 0 for
	// auxiliary cases.
	Figure int
	Desc   string
	H      *history.History
	// Expect maps each criterion to the expected acceptance.
	Expect map[spec.Criterion]bool
}

// Figure1 is the paper's Figure 1: a du-opaque history with serialization
// T2, T3, T1, T4 (v = 1, v' = 2).
//
//	T2: W(X,1) · tryC->C            (commits before T1's read responds)
//	T1: R(X)->1 · W(X,2) · tryC->C
//	T3: W(X,1) ············ tryC->C (overlaps T1 and T2; commits before T4)
//	T4: R(X)->2 · tryC->C
func Figure1() *history.History {
	b := history.NewBuilder()
	b.InvWrite(2, "X", 1)
	b.ResWrite(2, "X", 1)
	b.InvTryCommit(2)
	b.InvWrite(3, "X", 1)
	b.ResCommit(2)
	b.Read(1, "X", 1)
	b.Write(1, "X", 2)
	b.ResWrite(3, "X", 1)
	b.Commit(1)
	b.Commit(3)
	b.Read(4, "X", 2)
	b.Commit(4)
	return b.History()
}

// Figure2Family builds the paper's Figure 2 prefix of parameter j >= 2: T1
// performs write(X,1) and an incomplete tryC; T2 reads 1 overlapping T1's
// tryC; transactions T3..Tj each read 0, overlapping T1 and T2. Every
// finite member of the family is du-opaque, but its serializations are
// forced to place all readers of 0 before T1 and T2 after T1 — so the
// infinite limit has no serialization (Proposition 1: du-opacity is not
// limit-closed).
func Figure2Family(j int) *history.History {
	if j < 2 {
		j = 2
	}
	b := history.NewBuilder()
	b.Write(1, "X", 1)
	b.InvTryCommit(1) // never responds
	b.Read(2, "X", 1)
	for k := history.TxnID(3); k <= history.TxnID(j); k++ {
		b.Read(k, "X", 0)
	}
	return b.History()
}

// Figure3 is the paper's Figure 3: H is final-state opaque while its
// prefix H' = write1(X,1) · read2(X)->1 is not, showing final-state opacity
// is not prefix-closed.
func Figure3() *history.History {
	return history.NewBuilder().
		Write(1, "X", 1).
		Read(2, "X", 1).
		Commit(1).
		Commit(2).
		History()
}

// Figure3PrefixLen is the length of the non-final-state-opaque prefix H'.
const Figure3PrefixLen = 4

// Figure4 is the paper's Figure 4: an opaque history that is not
// du-opaque. T2 reads 1 during T1's tryC, which eventually aborts; T3
// rewrites 1 and commits before T1's abort, so every prefix is final-state
// opaque (completions commit whichever writer is still pending), yet no
// writer of 1 invoked tryC before T2's read responded.
func Figure4() *history.History {
	b := history.NewBuilder()
	b.Write(1, "X", 1)
	b.InvTryCommit(1)
	b.Read(2, "X", 1)
	b.Write(3, "X", 1)
	b.Commit(3)
	b.ResCommitAbort(1)
	return b.History()
}

// Figure5 is the paper's Figure 5: a sequential du-opaque (hence opaque)
// history that is not opaque under the read-commit-order definition of
// Guerraoui, Henzinger and Singh: read2(X) precedes tryC3, forcing
// T2 <_S T3, while legality of read2(Y)->1 forces T3 <_S T2.
func Figure5() *history.History {
	return history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).
		Write(3, "X", 1).Write(3, "Y", 1).Commit(3).
		Read(2, "Y", 1).
		History()
}

// Figure6 is the paper's Figure 6: a du-opaque history that is not TMS2.
// T1 and T2 conflict on X (T1 writes, T2 reads), T1's tryC response
// precedes T2's tryC invocation, so TMS2 forces T1 <_S T2 — but read2(X)->0
// forces T2 <_S T1.
func Figure6() *history.History {
	b := history.NewBuilder()
	b.Read(1, "X", 0)
	b.Write(1, "X", 1)
	b.Read(2, "X", 0)
	b.Commit(1)
	b.Write(2, "Y", 1)
	b.Commit(2)
	return b.History()
}

func expectAll(ok bool) map[spec.Criterion]bool {
	m := make(map[spec.Criterion]bool, len(spec.AllCriteria()))
	for _, c := range spec.AllCriteria() {
		m[c] = ok
	}
	return m
}

func with(m map[spec.Criterion]bool, overrides map[spec.Criterion]bool) map[spec.Criterion]bool {
	for c, ok := range overrides {
		m[c] = ok
	}
	return m
}

// Cases returns the litmus registry.
func Cases() []Case {
	return []Case{
		{
			Name:   "figure-1",
			Figure: 1,
			Desc:   "du-opaque history with serialization T2,T3,T1,T4",
			H:      Figure1(),
			// RCO rejects: read1(X) precedes tryC3, forcing T1 <_S T3,
			// while read4(X)->2 needs T3 before T1 (or after T4, which
			// real time forbids). The paper notes RCO is strictly stronger
			// than du-opacity.
			Expect: with(expectAll(true), map[spec.Criterion]bool{spec.RCO: false}),
		},
		{
			Name:   "figure-2-j6",
			Figure: 2,
			Desc:   "finite member (j=6) of the non-limit-closed family of Proposition 1",
			H:      Figure2Family(6),
			Expect: expectAll(true),
		},
		{
			Name:   "figure-3",
			Figure: 3,
			Desc:   "final-state opaque history whose prefix H' is not final-state opaque",
			H:      Figure3(),
			Expect: with(expectAll(true), map[spec.Criterion]bool{
				spec.DUOpacity: false, // read precedes the writer's tryC
				spec.Opacity:   false, // the prefix H' is not final-state opaque
				spec.RCO:       false, // read2(X) precedes tryC1, forcing T2 <_S T1
			}),
		},
		{
			Name:   "figure-4",
			Figure: 4,
			Desc:   "opaque but not du-opaque (Proposition 2)",
			H:      Figure4(),
			Expect: with(expectAll(true), map[spec.Criterion]bool{
				spec.DUOpacity: false,
				spec.RCO:       false, // read2(X) precedes tryC3, forcing T2 <_S T3
			}),
		},
		{
			Name:   "figure-5",
			Figure: 5,
			Desc:   "sequential, du-opaque, but not read-commit-order opaque ([6])",
			H:      Figure5(),
			Expect: with(expectAll(true), map[spec.Criterion]bool{spec.RCO: false}),
		},
		{
			Name:   "figure-6",
			Figure: 6,
			Desc:   "du-opaque but not TMS2",
			H:      Figure6(),
			Expect: with(expectAll(true), map[spec.Criterion]bool{spec.TMS2: false}),
		},
		{
			Name: "serial-chain",
			Desc: "serial committed chain: accepted by every criterion",
			H: history.NewBuilder().
				Write(1, "X", 1).Commit(1).
				Read(2, "X", 1).Write(2, "Y", 2).Commit(2).
				Read(3, "Y", 2).Commit(3).
				History(),
			Expect: expectAll(true),
		},
		{
			Name: "read-aborted-writer",
			Desc: "committed reader observes an aborted transaction's write",
			H: history.NewBuilder().
				Write(1, "X", 1).CommitAbort(1).
				Read(2, "X", 1).Commit(2).
				History(),
			Expect: expectAll(false),
		},
		{
			Name: "real-time-inversion",
			Desc: "reader of a future value fully precedes the writer",
			H: history.NewBuilder().
				Read(1, "X", 1).Commit(1).
				Write(2, "X", 1).Commit(2).
				History(),
			Expect: with(expectAll(false), map[spec.Criterion]bool{
				spec.Serializability: true, // T2,T1 ignores real time
			}),
		},
		{
			Name: "lost-update",
			Desc: "two overlapping increments both read 0 and commit",
			H: history.NewBuilder().
				InvRead(1, "X").InvRead(2, "X").
				ResRead(1, "X", 0).ResRead(2, "X", 0).
				Write(1, "X", 1).Write(2, "X", 2).
				Commit(1).Commit(2).
				History(),
			Expect: expectAll(false),
		},
		{
			Name: "commit-pending-source",
			Desc: "reader observes a commit-pending transaction after its tryC invocation",
			H: history.NewBuilder().
				Write(1, "X", 1).InvTryCommit(1).
				Read(2, "X", 1).Commit(2).
				History(),
			// RCO: T1 is not committed in H (its tryC never returns), so no
			// read-commit edge applies; a completion committing T1 works.
			Expect: expectAll(true),
		},
		{
			Name: "inconsistent-snapshot",
			Desc: "reader sees X from T1 but misses T1's Y (zombie read)",
			H: history.NewBuilder().
				Write(1, "X", 1).Write(1, "Y", 1).Commit(1).
				Read(2, "X", 1).Read(2, "Y", 0).Abort(2).
				History(),
			Expect: with(expectAll(false), map[spec.Criterion]bool{
				// Serializability baselines ignore the aborted reader.
				spec.StrictSerializability: true,
				spec.Serializability:       true,
			}),
		},
	}
}

// ByName returns the named case, or nil.
func ByName(name string) *Case {
	for _, c := range Cases() {
		if c.Name == name {
			cc := c
			return &cc
		}
	}
	return nil
}
