package duopacity_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); reference-style
// links are not used in this repository's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks is the CI docs check: every relative link in every
// markdown file of the repository must resolve to an existing file or
// directory, so README, docs/ARCHITECTURE.md, DESIGN.md and friends
// cannot drift apart from the tree they describe. External (http,
// mailto) and pure-anchor links are out of scope — no network in CI.
func TestDocsLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — link check ran in the wrong directory")
	}

	checked := 0
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", md, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked — the docs should cross-link (README → docs/ARCHITECTURE.md at minimum)")
	}
}
