module duopacity

go 1.21
