// Package duopacity is a reproduction of Attiya, Hans, Kuznetsov and Ravi,
// "Safety of Deferred Update in Transactional Memory" (ICDCS 2013): an
// executable model of transactional-memory histories, decision procedures
// for du-opacity and the related correctness criteria the paper compares
// it to, STM engines whose recorded executions those criteria judge, and
// the machinery of the paper's safety proofs (prefix closure, Lemma 1,
// Lemma 4, the König graph of Theorem 5).
//
// This package is the public facade: it re-exports the library surface
// from the internal packages. Typical use:
//
//	b := duopacity.NewBuilder()
//	b.Write(1, "X", 1)
//	b.Commit(1)
//	b.Read(2, "X", 1)
//	b.Commit(2)
//	v := duopacity.CheckDUOpacity(b.History())
//	fmt.Println(v.OK, v.Serialization) // true [T1+ T2+]
//
// or, running a real STM and certifying what it did:
//
//	eng, _ := duopacity.NewEngine("tl2", 16)
//	rec := duopacity.NewRecorder(eng)
//	// ... run transactions via rec.Begin() / rec.Atomically ...
//	v := duopacity.CheckDUOpacity(rec.History())
//
// Histories being produced are first-class: a Stream ingests events one
// at a time with O(1)-amortized validation and an incrementally
// maintained index, a Monitor certifies a stream online (witness reuse
// makes a monitored stream cost amortized O(1) checks per event instead
// of a batch re-check), and a Recorder's Tap feeds a live execution
// straight into a Monitor so violations are caught while the STM is
// still running:
//
//	m, _ := duopacity.NewMonitor(duopacity.DUOpacity)
//	rec.Tap(func(e duopacity.Event) { m.Append(e) })
//	// ... run transactions; m.Verdict() is always current ...
package duopacity

import (
	"io"

	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/koenig"
	"duopacity/internal/recorder"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// Core model types (see internal/history).
type (
	// History is a well-formed sequence of invocation and response events.
	History = history.History
	// Event is a single invocation or response event.
	Event = history.Event
	// TxnID identifies a transaction; 0 is reserved for T_0.
	TxnID = history.TxnID
	// Var names a t-object.
	Var = history.Var
	// Value is the domain of t-object values.
	Value = history.Value
	// Op is a t-operation in a per-transaction view.
	Op = history.Op
	// TxnInfo is the analyzed per-transaction view H|k.
	TxnInfo = history.TxnInfo
	// Seq is a t-complete t-sequential history (a candidate
	// serialization).
	Seq = history.Seq
	// Builder constructs histories fluently.
	Builder = history.Builder
	// Stream ingests a history as it is produced: per-event validation
	// and incremental indexing.
	Stream = history.Stream
)

// Checking types (see internal/spec).
type (
	// Criterion identifies a correctness criterion.
	Criterion = spec.Criterion
	// Verdict is the result of checking a history.
	Verdict = spec.Verdict
	// CheckOption configures a check.
	CheckOption = spec.Option
	// Monitor checks a criterion online while a history is produced.
	Monitor = spec.Monitor
	// ReadInfo is the per-read deferred-update analysis.
	ReadInfo = spec.ReadInfo
)

// The implemented criteria.
const (
	DUOpacity             = spec.DUOpacity
	FinalStateOpacity     = spec.FinalStateOpacity
	Opacity               = spec.Opacity
	TMS2                  = spec.TMS2
	RCO                   = spec.RCO
	StrictSerializability = spec.StrictSerializability
	Serializability       = spec.Serializability
)

// STM types (see internal/stm and internal/recorder).
type (
	// Engine is a software transactional memory.
	Engine = stm.Engine
	// Txn is a transaction in progress.
	Txn = stm.Txn
	// Recorder instruments an engine to capture histories.
	Recorder = recorder.Recorder
	// RecordedTxn is a recorded transaction.
	RecordedTxn = recorder.Txn
	// Plan is a deterministic multi-threaded transactional program — the
	// unit the schedule explorer enumerates.
	Plan = stm.Plan
	// PlanOp is one operation of a planned transaction.
	PlanOp = stm.PlanOp
	// PlanTxn is the operation list of one planned transaction.
	PlanTxn = stm.PlanTxn
)

// Harness types (see internal/harness).
type (
	// Workload parameterizes an engine run.
	Workload = harness.Workload
	// RunStats summarizes a run.
	RunStats = harness.RunStats
	// CertConfig parameterizes certification.
	CertConfig = harness.CertConfig
	// CertStats aggregates certification outcomes.
	CertStats = harness.CertStats
	// OnlineReport is the outcome of one online-monitored episode.
	OnlineReport = harness.OnlineReport
	// ExploreConfig parameterizes an exhaustive schedule exploration.
	ExploreConfig = harness.ExploreConfig
	// ExploreReport is the per-plan verdict of an exploration.
	ExploreReport = harness.ExploreReport
	// ExploreOutcome classifies an exploration's result.
	ExploreOutcome = harness.ExploreOutcome
)

// The exploration outcomes: a plan is proven (every schedule of the
// deterministic stepper's space enumerated, none violates), refuted with
// the causing schedule pinned, or left undecided by the budget.
const (
	ProvenDUOpaque  = harness.ProvenDUOpaque
	ViolationFound  = harness.ViolationFound
	BudgetExhausted = harness.BudgetExhausted
)

// ErrAborted is returned by transactional operations of aborted
// transactions.
var ErrAborted = stm.ErrAborted

// NewBuilder returns an empty history builder.
func NewBuilder() *Builder { return history.NewBuilder() }

// NewStream returns an empty history stream: append events one at a time
// with O(1)-amortized validation, snapshot with Stream.History.
func NewStream() *Stream { return history.NewStream() }

// FromEvents validates evs as a well-formed history.
func FromEvents(evs []Event) (*History, error) { return history.FromEvents(evs) }

// AllCriteria lists every implemented criterion.
func AllCriteria() []Criterion { return spec.AllCriteria() }

// Check dispatches to the checker for the criterion.
func Check(h *History, c Criterion, opts ...CheckOption) Verdict { return spec.Check(h, c, opts...) }

// CheckDUOpacity decides the paper's Definition 3.
func CheckDUOpacity(h *History, opts ...CheckOption) Verdict { return spec.CheckDUOpacity(h, opts...) }

// CheckOpacity decides Definition 5 (every prefix final-state opaque).
func CheckOpacity(h *History, opts ...CheckOption) Verdict { return spec.CheckOpacity(h, opts...) }

// CheckFinalStateOpacity decides Definition 4.
func CheckFinalStateOpacity(h *History, opts ...CheckOption) Verdict {
	return spec.CheckFinalStateOpacity(h, opts...)
}

// WithNodeLimit bounds a check's search.
func WithNodeLimit(n int) CheckOption { return spec.WithNodeLimit(n) }

// WithParallelism fans a check's top-level search branches across n
// workers.
func WithParallelism(n int) CheckOption { return spec.WithParallelism(n) }

// WithRetirement lets a Monitor checkpoint and discard its settled
// committed prefix once more than window transactions are live, bounding
// memory on unbounded streams without changing any verdict. Ignored by
// batch checks.
func WithRetirement(window int) CheckOption { return spec.WithRetirement(window) }

// WithTMS2AbortedReaderExemption drops TMS2 conflict-order edges sourced
// at aborted readers (the alternative reading of the paper's informal
// TMS2 statement; see internal/spec for the interpretation question).
func WithTMS2AbortedReaderExemption() CheckOption { return spec.WithTMS2AbortedReaderExemption() }

// VerifySerialization checks, without search, that s is a du-opaque
// serialization of h.
func VerifySerialization(h *History, s *Seq) error { return spec.VerifySerialization(h, s) }

// UniqueWrites reports Theorem 11's hypothesis: no two transactions write
// the same value to the same object.
func UniqueWrites(h *History) bool { return spec.UniqueWrites(h) }

// NewMonitor returns an online checker for DUOpacity, FinalStateOpacity or
// Opacity; feed it events with Append.
func NewMonitor(c Criterion, opts ...CheckOption) (*Monitor, error) {
	return spec.NewMonitor(c, opts...)
}

// AnalyzeReads explains every value-returning read: possible sources and
// which of them had invoked tryC before the read's response.
func AnalyzeReads(h *History) []ReadInfo { return spec.AnalyzeReads(h) }

// RestrictSerialization is Lemma 1's construction: a serialization of the
// length-i prefix whose sequence is a subsequence of seq(s).
func RestrictSerialization(h *History, s *Seq, i int) (*Seq, error) {
	return koenig.RestrictSerialization(h, s, i)
}

// EngineNames lists the shipped STM engines.
func EngineNames() []string { return engines.Names() }

// NewEngine constructs a shipped engine by name ("tl2", "norec", "etl",
// "etl+v", "gl", "ple").
func NewEngine(name string, objects int) (Engine, error) { return engines.New(name, objects) }

// Atomically runs fn inside transactions of e until one commits.
func Atomically(e Engine, fn func(Txn) error) error { return stm.Atomically(e, fn) }

// NewRecorder instruments eng so concurrent runs produce histories.
func NewRecorder(eng Engine) *Recorder { return recorder.New(eng) }

// RunWorkload executes a workload and returns performance statistics.
func RunWorkload(w Workload) (RunStats, error) { return harness.Run(w) }

// Certify runs recorded episodes of a workload and checks each against the
// criteria.
func Certify(cfg CertConfig, criteria []Criterion) (CertStats, error) {
	return harness.Certify(cfg, criteria)
}

// RunMonitored executes a workload with an online monitor certifying
// every event as it is recorded (certify-while-recording).
func RunMonitored(w Workload, c Criterion, nodeLimit int, interleaved bool) (OnlineReport, error) {
	return harness.RunMonitored(w, c, nodeLimit, interleaved)
}

// ExplorePlan enumerates every schedule of the deterministic stepper's
// space for the plan — the engine's exclusion policy plus the stepper's
// abort-backoff discipline, the space the interleaved sampler draws from
// — and certifies each online: the per-plan answer is a proof (no
// schedule of that space violates the criterion), a refutation pinned at
// the causing schedule and event, or budget exhaustion.
func ExplorePlan(engine string, p Plan, cfg ExploreConfig) (ExploreReport, error) {
	return harness.ExplorePlan(engine, p, cfg)
}

// ParsePlan reads a plan from its text form: one line per thread, '|'
// between a thread's transactions, "r<obj>"/"w<obj>" operations.
func ParsePlan(src string) (Plan, error) { return stm.ParsePlan(src) }

// FormatExploreTable renders exploration reports as an aligned table,
// one row per report, with any pinned violations below.
func FormatExploreTable(reports []ExploreReport) string {
	return harness.FormatExploreTable(reports)
}

// PlanOfWorkload exposes a workload's seeded per-goroutine transaction
// programs as the Plan its runs execute.
func PlanOfWorkload(w Workload) Plan { return harness.PlanOf(w) }

// ParseHistory reads the text format of cmd/ducheck.
func ParseHistory(r io.Reader) (*History, error) { return histio.Parse(r) }

// FormatHistory writes h in the text format.
func FormatHistory(w io.Writer, h *History) error { return histio.Format(w, h) }
