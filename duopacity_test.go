package duopacity_test

import (
	"strings"
	"testing"

	"duopacity"
)

func TestFacadeHistoryAndCheck(t *testing.T) {
	b := duopacity.NewBuilder()
	b.Write(1, "X", 1)
	b.Commit(1)
	b.Read(2, "X", 1)
	b.Commit(2)
	h := b.History()

	v := duopacity.CheckDUOpacity(h)
	if !v.OK {
		t.Fatalf("du-opacity rejected: %s", v.Reason)
	}
	if err := duopacity.VerifySerialization(h, v.Serialization); err != nil {
		t.Fatalf("witness verification: %v", err)
	}
	for _, c := range duopacity.AllCriteria() {
		if !duopacity.Check(h, c).OK {
			t.Errorf("%s rejected the serial history", c)
		}
	}
	if !duopacity.UniqueWrites(h) {
		t.Error("UniqueWrites should hold")
	}
	s, err := duopacity.RestrictSerialization(h, v.Serialization, 4)
	if err != nil || len(s.Txns) != 1 {
		t.Errorf("RestrictSerialization: %v, %v", s, err)
	}
}

func TestFacadeEnginesAndRecorder(t *testing.T) {
	names := duopacity.EngineNames()
	if len(names) == 0 {
		t.Fatal("no engines")
	}
	eng, err := duopacity.NewEngine("tl2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := duopacity.Atomically(eng, func(tx duopacity.Txn) error {
		return tx.Write(0, 7)
	}); err != nil {
		t.Fatal(err)
	}

	rec := duopacity.NewRecorder(eng)
	if err := rec.Atomically(func(tx *duopacity.RecordedTxn) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(1, v+1)
	}); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	// The recorded read of 7 has no writer inside this recording — the
	// facade user must be able to see that in the verdict.
	v := duopacity.CheckDUOpacity(h)
	if v.OK {
		t.Fatal("read of pre-recording state must be rejected (no source in history)")
	}
	if !strings.Contains(v.Reason, "no committable transaction writes") {
		t.Errorf("unexpected reason: %s", v.Reason)
	}
}

func TestFacadeWorkloadAndCertify(t *testing.T) {
	stats, err := duopacity.RunWorkload(duopacity.Workload{
		Engine: "norec", Objects: 4, Goroutines: 2, TxnsPerGoroutine: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Commits != 20 {
		t.Fatalf("commits = %d, want 20", stats.Commits)
	}
	cert, err := duopacity.Certify(duopacity.CertConfig{
		Workload: duopacity.Workload{
			Engine: "tl2", Objects: 4, Goroutines: 2, TxnsPerGoroutine: 3, OpsPerTxn: 2,
		},
		Episodes: 3,
	}, []duopacity.Criterion{duopacity.DUOpacity})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Accepted[duopacity.DUOpacity] != 3 {
		t.Fatalf("accepted = %d, want 3", cert.Accepted[duopacity.DUOpacity])
	}
}

func TestFacadeParseFormat(t *testing.T) {
	h, err := duopacity.ParseHistory(strings.NewReader("write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := duopacity.FormatHistory(&sb, h); err != nil {
		t.Fatal(err)
	}
	back, err := duopacity.ParseHistory(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip changed length: %d -> %d", h.Len(), back.Len())
	}
}

func TestFacadeFromEventsAndOptions(t *testing.T) {
	evs := duopacity.NewBuilder().Write(1, "X", 1).Commit(1).History().Events()
	h, err := duopacity.FromEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	v := duopacity.CheckOpacity(h, duopacity.WithNodeLimit(1_000_000))
	if !v.OK {
		t.Fatalf("opacity rejected: %s", v.Reason)
	}
	if fs := duopacity.CheckFinalStateOpacity(h); !fs.OK {
		t.Fatalf("final-state opacity rejected: %s", fs.Reason)
	}
}
